package experiments

// Manifest builders: every harness result converts into a
// machine-readable bench.Manifest so cmd/benchsuite can serialize one
// BENCH_<exp>.json per experiment and CI can diff runs against the
// committed baseline with `benchsuite -compare`.
//
// Only simulated quantities carry a gating direction (LowerIsBetter /
// HigherIsBetter): they are deterministic for a fixed (seed, scalediv),
// so any drift past tolerance is a real behavior change. Wall-clock and
// shape data travel as informational values (empty direction) and never
// gate.

import (
	"fmt"

	"activego/internal/bench"
	"activego/internal/metrics"
	"activego/internal/plan"
	"activego/internal/workloads"
)

// Bench converts the Table I catalog into a manifest: sizes and region
// counts per application. Regions are tracked — a region-count change
// means a workload program changed underneath the benchmarks.
func BenchTable1(rows []Table1Row, params workloads.Params) *bench.Manifest {
	m := bench.NewManifest("table1", params.Seed, params.ScaleDiv)
	for _, r := range rows {
		w := bench.Workload{Name: r.Name}
		w.Add("regions", float64(r.Regions), "lines", bench.LowerIsBetter)
		w.Add("scaled.bytes", float64(r.ScaledBytes), "B", "")
		w.Add("paper.bytes", float64(r.PaperBytes), "B", "")
		m.Workloads = append(m.Workloads, w)
	}
	return m
}

// Bench converts the Figure 2 availability sweep: one tracked speedup
// value per swept availability, plus the crossover point.
func (r *Fig2Result) Bench(params workloads.Params) *bench.Manifest {
	m := bench.NewManifest("fig2", params.Seed, params.ScaleDiv)
	for _, name := range Fig2Workloads {
		w := bench.Workload{Name: name, Planner: "static-exhaustive"}
		for _, a := range Fig2Availabilities {
			w.Add(fmt.Sprintf("speedup@%.0f%%", a*100), r.SpeedupAt(name, a), "x", bench.HigherIsBetter)
		}
		w.Add("crossover.availability", r.Crossover(name), "", "")
		m.Workloads = append(m.Workloads, w)
	}
	return m
}

// Bench converts the Figure 4 comparison: per workload the baseline
// time and both speedups are tracked; the gap and plan match ride as
// info. The ActivePy offload set is recorded as the planner choice.
func (r *Fig4Result) Bench(params workloads.Params) *bench.Manifest {
	m := bench.NewManifest("fig4", params.Seed, params.ScaleDiv)
	for _, row := range r.Rows {
		w := bench.Workload{Name: row.Workload, Planner: "activepy-optimal", PlanLines: row.PlanLines}
		w.Add("baseline.seconds", row.BaselineTime, "s", bench.LowerIsBetter)
		w.Add("static.speedup", row.StaticSpeedup, "x", bench.HigherIsBetter)
		w.Add("activepy.speedup", row.ActivePySpeedup, "x", bench.HigherIsBetter)
		w.Add("gap.percent", row.GapPercent, "%", "")
		w.Add("plan.match", boolVal(row.PlanMatches), "", "")
		m.Workloads = append(m.Workloads, w)
	}
	agg := bench.Workload{Name: "MEAN"}
	agg.Add("static.speedup", r.MeanStatic, "x", bench.HigherIsBetter)
	agg.Add("activepy.speedup", r.MeanActivePy, "x", bench.HigherIsBetter)
	agg.Add("plan.matches", float64(r.Matches), "", "")
	m.Workloads = append(m.Workloads, agg)
	return m
}

// Bench converts the Figure 5 migration study: the with-migration
// speedup is tracked per (workload, availability); the without-migration
// number is the deliberately bad arm and rides as info, as does whether
// the monitor fired.
func (r *Fig5Result) Bench(params workloads.Params) *bench.Manifest {
	m := bench.NewManifest("fig5", params.Seed, params.ScaleDiv)
	byName := map[string]*bench.Workload{}
	var order []string
	for _, row := range r.Rows {
		w := byName[row.Workload]
		if w == nil {
			w = &bench.Workload{Name: row.Workload, Planner: "activepy-optimal"}
			byName[row.Workload] = w
			order = append(order, row.Workload)
		}
		at := fmt.Sprintf("@%.0f%%", row.Availability*100)
		w.Add("speedup.migration"+at, row.WithMigration, "x", bench.HigherIsBetter)
		w.Add("speedup.static"+at, row.WithoutMigration, "x", "")
		w.Add("migrated"+at, boolVal(row.Migrated), "", "")
	}
	for _, name := range order {
		m.Workloads = append(m.Workloads, *byName[name])
	}
	agg := bench.Workload{Name: "SUMMARY"}
	for _, a := range Fig5Availabilities {
		at := fmt.Sprintf("@%.0f%%", a*100)
		agg.Add("migration.advantage"+at, r.MigrationAdvantage(a), "x", bench.HigherIsBetter)
		mean, max := r.LossWithoutMigration(a)
		agg.Add("loss.mean"+at, mean, "", "")
		agg.Add("loss.max"+at, max, "", "")
	}
	m.Workloads = append(m.Workloads, agg)
	return m
}

// Bench converts the prediction-accuracy study into its summary
// numbers; the per-line table stays in the text/JSON table output.
func (r *AccuracyResult) Bench(params workloads.Params) *bench.Manifest {
	m := bench.NewManifest("accuracy", params.Seed, params.ScaleDiv)
	w := bench.Workload{Name: "SUMMARY"}
	w.Add("geomean.error", r.GeoMeanError, "", bench.LowerIsBetter)
	w.Add("max.csr.overestimate", r.MaxCSROverestimate, "x", "")
	w.Add("csr.always.over", boolVal(r.CSRAlwaysOver), "", "")
	w.Add("lines.measured", float64(len(r.Lines)), "", "")
	m.Workloads = append(m.Workloads, w)
	return m
}

// Bench converts the runtime-optimization ladder: all three slowdowns
// are tracked per workload — they are pure simulated ratios.
func (r *RuntimeOptResult) Bench(params workloads.Params) *bench.Manifest {
	m := bench.NewManifest("runtimeopt", params.Seed, params.ScaleDiv)
	for _, row := range r.Rows {
		w := bench.Workload{Name: row.Workload}
		w.Add("interpreted.slowdown", row.Interpreted, "", bench.LowerIsBetter)
		w.Add("cython.slowdown", row.Cython, "", bench.LowerIsBetter)
		w.Add("native.slowdown", row.Native, "", bench.LowerIsBetter)
		m.Workloads = append(m.Workloads, w)
	}
	agg := bench.Workload{Name: "MEAN"}
	agg.Add("interpreted.slowdown", r.MeanInterp, "", bench.LowerIsBetter)
	agg.Add("cython.slowdown", r.MeanCython, "", bench.LowerIsBetter)
	agg.Add("native.slowdown", r.MeanNative, "", bench.LowerIsBetter)
	m.Workloads = append(m.Workloads, agg)
	return m
}

// Bench converts the robustness sweep: duration and completion are
// tracked per (workload, rate) — completion collapsing from 1 to 0 is
// exactly the kind of regression the gate exists for. Recovery counters
// ride as info.
func (r *RobustnessResult) Bench(params workloads.Params) *bench.Manifest {
	m := bench.NewManifest("robustness", params.Seed, params.ScaleDiv)
	byName := map[string]*bench.Workload{}
	var order []string
	for _, row := range r.Rows {
		w := byName[row.Workload]
		if w == nil {
			w = &bench.Workload{Name: row.Workload, Planner: "activepy-optimal"}
			byName[row.Workload] = w
			order = append(order, row.Workload)
		}
		at := fmt.Sprintf("@%.2f", row.Rate)
		w.Add("duration.seconds"+at, row.Duration, "s", bench.LowerIsBetter)
		w.Add("completed"+at, boolVal(row.Completed), "", bench.HigherIsBetter)
		w.Add("retries"+at, float64(row.Retries), "", "")
		w.Add("timeouts"+at, float64(row.Timeouts), "", "")
		w.Add("failed.calls"+at, float64(row.FailedCalls), "", "")
	}
	for _, name := range order {
		m.Workloads = append(m.Workloads, *byName[name])
	}
	return m
}

// Bench converts the resilience sweep: all three arms' durations and
// the breaker's advantage ratios are tracked per (workload, rate) —
// deterministic simulated quantities, so the gate catches any posture
// regression. Ladder counters ride as info; the chaos sub-run gates on
// violations (must stay 0) and the zero-fault differential match.
func (r *ResilienceResult) Bench(params workloads.Params) *bench.Manifest {
	m := bench.NewManifest("resilience", params.Seed, params.ScaleDiv)
	byName := map[string]*bench.Workload{}
	var order []string
	for _, row := range r.Rows {
		w := byName[row.Workload]
		if w == nil {
			w = &bench.Workload{Name: row.Workload, Planner: "activepy-optimal"}
			byName[row.Workload] = w
			order = append(order, row.Workload)
		}
		at := fmt.Sprintf("@%.2f", row.Rate)
		w.Add("breaker.seconds"+at, row.BreakerDur, "s", bench.LowerIsBetter)
		w.Add("static.seconds"+at, row.StaticDur, "s", "")
		w.Add("oneshot.seconds"+at, row.OneshotDur, "s", "")
		w.Add("vs.static"+at, row.VsStatic, "x", bench.HigherIsBetter)
		w.Add("vs.oneshot"+at, row.VsOneshot, "x", "")
		w.Add("completed"+at, boolVal(row.Completed), "", bench.HigherIsBetter)
		w.Add("breaker.opens"+at, float64(row.BreakerOpens), "", "")
		w.Add("breaker.closes"+at, float64(row.BreakerCloses), "", "")
		w.Add("degraded.lines"+at, float64(row.DegradedLines), "", "")
	}
	for _, name := range order {
		m.Workloads = append(m.Workloads, *byName[name])
	}
	if r.Chaos != nil {
		w := bench.Workload{Name: "CHAOS"}
		w.Add("schedules", float64(r.Chaos.Schedules), "", "")
		w.Add("completed", float64(r.Chaos.Completed), "", "")
		w.Add("clean.failures", float64(r.Chaos.CleanFailures), "", "")
		w.Add("violations", float64(len(r.Chaos.Violations)), "", bench.LowerIsBetter)
		w.Add("clean.match", boolVal(r.Chaos.CleanMatch), "", bench.HigherIsBetter)
		m.Workloads = append(m.Workloads, w)
	}
	return m
}

// Bench converts the utilization study: both traced runs' durations are
// tracked, and the stressed run must keep migrating.
func (u *UtilizationResult) Bench(params workloads.Params) *bench.Manifest {
	m := bench.NewManifest("utilization", params.Seed, params.ScaleDiv)
	w := bench.Workload{Name: u.Workload, Planner: "activepy-optimal"}
	w.Add("steady.seconds", u.Res.Duration, "s", bench.LowerIsBetter)
	w.Add("stressed.seconds", u.StressRes.Duration, "s", bench.LowerIsBetter)
	w.Add("migrated", boolVal(u.StressRes.Migrated), "", bench.HigherIsBetter)
	w.Add("stress.at.seconds", u.StressAt, "s", "")
	m.Workloads = append(m.Workloads, w)
	return m
}

// Bench converts the serving sweep: per (tenant, load) the tail
// quantiles and completion counts are tracked — deterministic simulated
// quantities, so a tail regression or a fairness collapse fails the
// gate. Offered counts and the calibrated capacity ride as info.
func (r *ServingResult) Bench(params workloads.Params) *bench.Manifest {
	m := bench.NewManifest("serving", params.Seed, params.ScaleDiv)
	byName := map[string]*bench.Workload{}
	var order []string
	for _, cell := range r.Cells {
		at := fmt.Sprintf("@%.2f", cell.Load)
		for _, tr := range cell.Res.Tenants {
			w := byName[tr.Name]
			if w == nil {
				w = &bench.Workload{Name: tr.Name}
				byName[tr.Name] = w
				order = append(order, tr.Name)
			}
			w.Add("p50.seconds"+at, tr.P50, "s", bench.LowerIsBetter)
			w.Add("p95.seconds"+at, tr.P95, "s", bench.LowerIsBetter)
			w.Add("p99.seconds"+at, tr.P99, "s", bench.LowerIsBetter)
			w.Add("completed"+at, float64(tr.Completed), "", bench.HigherIsBetter)
			w.Add("offered"+at, float64(tr.Offered), "", "")
			w.Add("shed"+at, float64(tr.Shed), "", "")
		}
	}
	for _, name := range order {
		m.Workloads = append(m.Workloads, *byName[name])
	}
	agg := bench.Workload{Name: "SUMMARY"}
	agg.Add("capacity.qps", r.CapacityQPS, "req/s", "")
	agg.Add("mean.service.seconds", r.MeanService, "s", "")
	for _, cell := range r.Cells {
		at := fmt.Sprintf("@%.2f", cell.Load)
		agg.Add("fairness"+at, cell.Res.Fairness, "", bench.HigherIsBetter)
		agg.Add("makespan.seconds"+at, cell.Res.Makespan, "s", "")
		agg.Add("shed.total"+at, float64(cell.Res.Shed), "", "")
	}
	m.Workloads = append(m.Workloads, agg)
	return m
}

// Bench converts the drift study: the burst arm must keep flagging
// stale lines and the control arm must stay clean — both directions
// gate, because either collapsing means the detector broke. Ratios and
// accounting ride as info.
func (r *DriftResult) Bench(params workloads.Params) *bench.Manifest {
	m := bench.NewManifest("drift", params.Seed, params.ScaleDiv)
	for _, arm := range []*DriftArm{&r.Control, &r.Burst} {
		w := bench.Workload{Name: arm.Name, Planner: "activepy-optimal"}
		dir := bench.LowerIsBetter // control: stale lines must stay 0
		if arm.Burst {
			dir = bench.HigherIsBetter // burst: the detector must keep firing
		}
		w.Add("stale.lines", float64(len(arm.Stale)), "", dir)
		var diverged, checks int
		var maxRatio float64
		for _, ld := range arm.Report.Lines {
			checks += ld.Windows
			diverged += ld.Diverged
			if ld.Ratio > maxRatio {
				maxRatio = ld.Ratio
			}
		}
		w.Add("windows.checked", float64(checks), "", "")
		w.Add("windows.diverged", float64(diverged), "", "")
		w.Add("max.ratio", maxRatio, "x", "")
		w.Add("completed", float64(arm.Res.Completed), "", bench.HigherIsBetter)
		w.Add("shed", float64(arm.Res.Shed), "", "")
		m.Workloads = append(m.Workloads, w)
	}
	agg := bench.Workload{Name: "SUMMARY"}
	agg.Add("stale.offloaded.overlap", float64(r.StaleOffloadedOverlap()), "", bench.HigherIsBetter)
	agg.Add("offloaded.lines", float64(len(r.Offloaded)), "", "")
	agg.Add("solo.seconds", r.Solo, "s", "")
	agg.Add("window.seconds", r.Window, "s", "")
	m.Workloads = append(m.Workloads, agg)
	return m
}

// Bench converts the planner study. Exactness, optimal agreement, and
// the cache's hit/miss split all gate: every quantity is a deterministic
// function of the fixtures and the seed, so any drift is a real planner
// or cache behavior change. Node and cut counts gate too (LowerIsBetter)
// — a search that suddenly expands more nodes is a pruning regression
// even when it stays exact. The cache rows carry the runtime counter
// names (metrics catalogue §10) so a manifest diff reads like a metrics
// diff.
func (r *PlannerResult) Bench(params workloads.Params) *bench.Manifest {
	m := bench.NewManifest("planner", params.Seed, params.ScaleDiv)
	for _, pt := range r.Points {
		w := bench.Workload{Name: fmt.Sprintf("bnb-%dlines", pt.Lines), Planner: plan.PlannerBnB}
		w.Add("exact", boolVal(pt.Exact), "", bench.HigherIsBetter)
		w.Add("nodes", float64(pt.Nodes), "", bench.LowerIsBetter)
		w.Add("cuts.bound", float64(pt.BoundCuts), "", "")
		w.Add("cuts.neverwin", float64(pt.NeverWinCuts), "", "")
		w.Add("components", float64(pt.Components), "", "")
		w.Add("tcsd.seconds", pt.TCSD, "s", bench.LowerIsBetter)
		w.Add("greedy.tcsd.seconds", pt.GreedyTCSD, "s", "")
		w.Add("thost.seconds", pt.THost, "s", "")
		if pt.Lines <= plan.MaxOptimalLines {
			w.Add("optimal.match", boolVal(pt.OptimalMatch), "", bench.HigherIsBetter)
		}
		m.Workloads = append(m.Workloads, w)
	}
	c := bench.Workload{Name: "plan-cache"}
	c.Add(metrics.MetricPlanCacheHit, float64(r.Cache.Hits), "", bench.HigherIsBetter)
	c.Add(metrics.MetricPlanCacheMiss, float64(r.Cache.Misses), "", bench.LowerIsBetter)
	c.Add("hit.rate", r.Cache.HitRate, "", bench.HigherIsBetter)
	c.Add("hit.identical", boolVal(r.Cache.HitIdentical), "", bench.HigherIsBetter)
	c.Add("builds", float64(r.Cache.Builds), "", "")
	c.Add("tenants", float64(r.Cache.Tenants), "", "")
	c.Add("served.completed", float64(r.Cache.Completed), "", bench.HigherIsBetter)
	c.Add("served.offered", float64(r.Cache.Offered), "", "")
	m.Workloads = append(m.Workloads, c)
	return m
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
