package experiments

import (
	"fmt"
	"reflect"

	"activego/internal/driver"
	"activego/internal/fault"
	"activego/internal/plan"
	"activego/internal/platform"
	"activego/internal/report"
	"activego/internal/workloads"
)

// The planner study (ours — no paper counterpart; DESIGN.md §16): the
// seed's exact planner enumerated all 2^n placements and silently
// degraded to the greedy Algorithm 1 past 16 offloadable lines — a
// cliff where plan quality could drop the moment a program grew one
// line too many. This study measures the replacement on both axes:
//
//   - Exactness past the cliff: branch-and-bound plans fixture programs
//     of 12–32 viable lines, and the manifest tracks that every point
//     stays exact (no node-budget fallback), what the search cost in
//     nodes, how much the bound and never-win cuts pruned, and how far
//     the greedy walk's plan is from the exact optimum.
//   - Plan memoization in the serving loop: a tenant fleet whose mixes
//     rebuild the same two workloads pays the sampling + planning
//     pipeline once per distinct (workload, params) and serves every
//     later construction from the cache, bit-identically.

// PlannerSeed keys the cache study's serving run arrivals.
const PlannerSeed = 31

// PlannerPoints are the exactness ladder's viable-line counts: up to
// the old enumeration cliff (12, 16) and past it (24, 30, 32).
var PlannerPoints = []int{12, 16, 24, 30, 32}

// plannerChainMax bounds one fixture chain. 16 keeps every component
// within the branch-and-bound exactness guarantee (2^17−2 nodes per
// chain, far under the 2^22 budget) while still exceeding the seed
// planner's whole-program limit once two chains are present.
const plannerChainMax = 16

// PlannerCacheTenants is the fleet size of the memoization study; with
// PlannerCacheWorkloads workloads per mix it yields tenants×workloads
// builds of which only the first mix misses: 24 builds, 2 misses —
// a 91.7% hit rate.
const PlannerCacheTenants = 12

// PlannerCacheWorkloads are the two scenarios every tenant's mix
// rebuilds (the serving study's canonical pair).
var PlannerCacheWorkloads = []string{"tpch-6", "blackscholes"}

// PlannerFixture fabricates a deterministic program of the given viable
// line count as planner estimates: lines round-robin over
// ceil(lines/16) dependence chains, each line reading its chain
// predecessor's variable and writing its own, with costs and byte
// volumes drawn from a splitmix64 stream keyed by the line count. Every
// chain is an independent variable-sharing component of at most 16
// lines, so branch-and-bound is statically guaranteed exact at every
// fixture size — the study measures the search, not fallback luck.
func PlannerFixture(lines int) []plan.LineEstimate {
	nchains := (lines + plannerChainMax - 1) / plannerChainMax
	// Seed provenance: derived from the fixture size parameter, so each
	// ladder point is a distinct but reproducible program.
	state := uint64(lines)
	next := func() uint64 {
		state++
		return fault.Mix64(state)
	}
	unit := func(scale float64) float64 {
		return scale * float64(next()%1000+1) / 1000
	}
	out := make([]plan.LineEstimate, 0, lines)
	for i := 0; i < lines; i++ {
		chain, pos := i%nchains, i/nchains
		ct := unit(2e-4)
		e := plan.LineEstimate{
			Line:   i + 1,
			Execs:  float64(next()%64 + 1),
			CTHost: ct,
			CTDev:  ct * (0.5 + 3*float64(next()%100)/100),
			SHost:  unit(3e-4),
			SDev:   unit(1.5e-4),
		}
		if pos > 0 {
			e.Reads = append(e.Reads, plan.VarFlow{
				Name:  fmt.Sprintf("c%d.v%d", chain, pos-1),
				Bytes: float64(next() % 2e6),
			})
		}
		e.Writes = append(e.Writes, plan.VarFlow{
			Name:  fmt.Sprintf("c%d.v%d", chain, pos),
			Bytes: float64(next() % 2e6),
		})
		for _, r := range e.Reads {
			e.DIn += r.Bytes
		}
		for _, w := range e.Writes {
			e.DOut += w.Bytes
		}
		out = append(out, e)
	}
	return out
}

// PlannerPoint is one exactness-ladder measurement.
type PlannerPoint struct {
	Lines        int
	Components   int
	Nodes        int
	BoundCuts    int
	NeverWinCuts int
	Exact        bool    // search finished inside the node budget
	THost        float64 // all-host walk cost
	TCSD         float64 // branch-and-bound plan's walk cost
	GreedyTCSD   float64 // Algorithm 1's plan, walked for contrast
	// OptimalMatch is set at points inside the old enumeration limit,
	// where brute force is feasible: the branch-and-bound cost equals
	// the enumerated optimum.
	OptimalMatch bool
}

// PlannerCacheStudy is the memoization half's outcome.
type PlannerCacheStudy struct {
	Workloads    []string
	Tenants      int
	Builds       int
	Hits         uint64
	Misses       uint64
	HitRate      float64
	HitIdentical bool // warm scenarios structurally equal the cold ones
	// Served is the warm fleet's small serving run: every tenant's mix
	// came out of the cache, and the requests replay normally.
	Completed int
	Offered   int
}

// PlannerResult is the full study.
type PlannerResult struct {
	Machine plan.Machine
	Budget  int
	Points  []PlannerPoint
	Cache   PlannerCacheStudy
}

// plannerPoint runs one exactness measurement.
func plannerPoint(lines int, m plan.Machine) PlannerPoint {
	estimates := PlannerFixture(lines)
	cons := plan.Constraints{HostOnly: map[int]string{}}
	var stats plan.BnBStats
	res := plan.BnBBudget(estimates, cons, m, plan.DefaultBnBNodeBudget, &stats)
	greedy := plan.Algorithm1(estimates, plan.Constraints{HostOnly: map[int]string{}}, m)
	pt := PlannerPoint{
		Lines:        lines,
		Components:   stats.Components,
		Nodes:        stats.Nodes,
		BoundCuts:    stats.BoundCuts,
		NeverWinCuts: stats.NeverWinCuts,
		Exact:        !stats.Fallback,
		THost:        res.THost,
		TCSD:         plan.EvaluatePlacement(estimates, res.Partition, m),
		GreedyTCSD:   plan.EvaluatePlacement(estimates, greedy.Partition, m),
	}
	if lines <= plan.MaxOptimalLines {
		opt := plan.Optimal(estimates, plan.Constraints{HostOnly: map[int]string{}}, m)
		pt.OptimalMatch = plan.EvaluatePlacement(estimates, opt.Partition, m) == pt.TCSD
	}
	return pt
}

// scenarioEqual compares the plan-derived halves of two scenarios (the
// traces are rebuilt per construction and compared implicitly through
// the estimates the planner derived from them).
func scenarioEqual(a, b *driver.Scenario) bool {
	return a.Partition.Equal(b.Partition) &&
		reflect.DeepEqual(a.Estimates, b.Estimates) &&
		reflect.DeepEqual(a.Provenance, b.Provenance)
}

// Planner runs the study: the exactness ladder fanned out on the pool
// (assembled in input order, so -j 1 and -j N are bit-identical), then
// the serving-loop memoization study on an injected cold cache — the
// study's gated hit/miss counts must be a pure function of its own
// builds, never of what earlier harness runs warmed into the shared
// driver cache.
func Planner(params workloads.Params, opts ...Option) (*PlannerResult, *report.Table, error) {
	o := buildOptions(opts)
	m := plan.MachineFromPlatform(platform.Default())
	res := &PlannerResult{Machine: m, Budget: plan.DefaultBnBNodeBudget}

	points, err := overSpecs(o, len(PlannerPoints), func(i int, _ []Option) (PlannerPoint, error) {
		return plannerPoint(PlannerPoints[i], m), nil
	})
	if err != nil {
		return nil, nil, err
	}
	res.Points = points

	prev := driver.SetPlanCache(plan.NewCache())
	defer driver.SetPlanCache(prev)
	weighted := make([]driver.Weighted, len(PlannerCacheWorkloads))
	for i, name := range PlannerCacheWorkloads {
		weighted[i] = driver.Weighted{Name: name, Weight: 1}
	}
	var cold []*driver.Scenario
	identical := true
	var lastMix *driver.Mix
	for t := 0; t < PlannerCacheTenants; t++ {
		mix, err := driver.BuildMix(params, weighted)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: planner: tenant %d: %w", t, err)
		}
		scs := mix.Scenarios()
		if t == 0 {
			cold = scs
		} else {
			for i := range scs {
				if !scenarioEqual(cold[i], scs[i]) {
					identical = false
				}
			}
		}
		lastMix = mix
	}
	stats := driver.PlanCacheStats()
	cache := PlannerCacheStudy{
		Workloads:    PlannerCacheWorkloads,
		Tenants:      PlannerCacheTenants,
		Builds:       PlannerCacheTenants * len(PlannerCacheWorkloads),
		Hits:         stats.Hits,
		Misses:       stats.Misses,
		HitRate:      stats.HitRate(),
		HitIdentical: identical,
	}

	// A small warm serving run over the fully cache-built fleet: the
	// memoized scenarios must serve exactly like cold ones.
	seed := o.seedOr(PlannerSeed)
	solo, err := driftSolo(lastMix.Scenarios()[0])
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: planner: calibrate: %w", err)
	}
	qps := 0.5 / solo
	sres, err := driver.Run(platform.Default(), driver.Config{
		Seed:     seed,
		Duration: 8 / qps,
		Tenants: []driver.TenantConfig{{Name: "warm", Mix: lastMix,
			Arrival: driver.Arrival{Process: driver.Poisson, QPS: qps}}},
		MaxInFlight: 1,
		MaxQueue:    4,
		Metrics:     o.metrics,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: planner: serve: %w", err)
	}
	cache.Completed = sres.Completed
	cache.Offered = sres.Offered
	res.Cache = cache

	tbl := report.NewTable(
		fmt.Sprintf("Planner: branch-and-bound exactness ladder (budget %d nodes) + serving-loop plan cache", res.Budget),
		"lines", "components", "nodes", "bound cuts", "neverwin cuts", "exact", "T_CSD", "greedy T_CSD", "optimal match")
	for _, pt := range res.Points {
		match := "n/a (past enumeration limit)"
		if pt.Lines <= plan.MaxOptimalLines {
			match = fmt.Sprintf("%t", pt.OptimalMatch)
		}
		tbl.AddRow(
			fmt.Sprintf("%d", pt.Lines),
			fmt.Sprintf("%d", pt.Components),
			fmt.Sprintf("%d", pt.Nodes),
			fmt.Sprintf("%d", pt.BoundCuts),
			fmt.Sprintf("%d", pt.NeverWinCuts),
			fmt.Sprintf("%t", pt.Exact),
			fmt.Sprintf("%.6f", pt.TCSD),
			fmt.Sprintf("%.6f", pt.GreedyTCSD),
			match)
	}
	tbl.AddRow("CACHE",
		fmt.Sprintf("%d tenants", cache.Tenants),
		fmt.Sprintf("%d builds", cache.Builds),
		fmt.Sprintf("%d hits", cache.Hits),
		fmt.Sprintf("%d misses", cache.Misses),
		fmt.Sprintf("%.1f%%", 100*cache.HitRate),
		fmt.Sprintf("identical %t", cache.HitIdentical),
		fmt.Sprintf("served %d/%d", cache.Completed, cache.Offered),
		"")
	return res, tbl, nil
}
