package experiments

import (
	"fmt"

	"activego/internal/lang/parser"
	"activego/internal/report"
	"activego/internal/workloads"
)

// Table1Row is one application of Table I.
type Table1Row struct {
	Name        string
	PaperBytes  int64
	ScaledBytes int64
	Regions     int // single-entry-single-exit code regions (source lines)
	Description string
}

// Table1 regenerates the paper's Table I: the application catalog with
// input data sizes and their single-entry-single-exit code regions, plus
// the scaled sizes this reproduction actually runs.
func Table1(params workloads.Params, opts ...Option) ([]Table1Row, *report.Table, error) {
	tbl := report.NewTable("Table I: applications, input sizes, SESE code regions",
		"name", "paper size", "scaled size", "regions", "description")
	var rows []Table1Row
	for _, spec := range workloads.TableI() {
		inst := spec.Build(params)
		prog, err := parser.Parse(inst.Source)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: table1: %s: %w", spec.Name, err)
		}
		regions := prog.MaxLine()
		row := Table1Row{
			Name:        spec.Name,
			PaperBytes:  spec.PaperBytes,
			ScaledBytes: inst.Registry.TotalBytes(),
			Regions:     regions,
			Description: spec.Description,
		}
		rows = append(rows, row)
		tbl.AddRow(spec.Name, fmtGB(spec.PaperBytes), fmtMB(row.ScaledBytes),
			fmt.Sprintf("%d", regions), spec.Description)
	}
	return rows, tbl, nil
}

func fmtGB(b int64) string { return fmt.Sprintf("%.1f GB", float64(b)/(1<<30)) }
func fmtMB(b int64) string { return fmt.Sprintf("%.1f MB", float64(b)/(1<<20)) }
