package experiments

import (
	"fmt"

	"activego/internal/driver"
	"activego/internal/exec"
	"activego/internal/platform"
	"activego/internal/report"
	"activego/internal/trace"
	"activego/internal/workloads"
)

// The serving study (ours — no paper counterpart): the paper evaluates
// one application at a time, start to finish, on an otherwise idle
// device. A deployed CSD is shared — several tenants fire streams of
// small requests at one long-lived platform, and what matters is not a
// single run's latency but the tail of the distribution and how fairly
// the device's capacity divides under contention. This study drives the
// multi-tenant serving layer (internal/driver, DESIGN.md §14) across an
// offered-load axis calibrated against the platform's measured capacity
// and reports p50/p95/p99 latency per tenant plus Jain's fairness index
// per load point.

// ServingSeed seeds every tenant's arrival and mix stream; one seed
// makes the whole sweep bit-reproducible.
const ServingSeed = 17

// ServingLoads is the offered-load axis, as a fraction of the measured
// serving capacity: comfortably under, at, and well past saturation.
// The overloaded point is where queueing blows up the tail and the
// admission controller starts shedding — exactly the regime the
// fairness index is for.
var ServingLoads = []float64{0.5, 1.0, 2.0}

// ServingMaxInFlight / ServingMaxQueue bound the platform's service
// slots and admission queue for the study.
const (
	ServingMaxInFlight = 4
	ServingMaxQueue    = 8
)

// ServingRequestTarget sizes each load point's horizon: the arrival
// horizon is chosen so roughly this many requests are offered in total,
// keeping the study's cost flat across the load axis.
const ServingRequestTarget = 48

// ServingTenantSpec is one default tenant template: a weighted scenario
// mix and an arrival discipline.
type ServingTenantSpec struct {
	Name    string
	Weights []driver.Weighted
	Process driver.Process
	// BurstFactor/DutyCycle/Period apply when Process is Bursty.
	BurstFactor float64
	DutyCycle   float64
	Period      float64
}

// ServingTenants are the default tenant population: two Poisson
// streams with opposite mix skews and one bursty stream, so the sweep
// exercises contention between smooth and spiky traffic over distinct
// workload blends.
var ServingTenants = []ServingTenantSpec{
	{Name: "interactive", Process: driver.Poisson,
		Weights: []driver.Weighted{{Name: "tpch-6", Weight: 4}, {Name: "blackscholes", Weight: 1}}},
	{Name: "batch", Process: driver.Poisson,
		Weights: []driver.Weighted{{Name: "kmeans", Weight: 4}, {Name: "tpch-6", Weight: 1}}},
	{Name: "spiky", Process: driver.Bursty, BurstFactor: 6, DutyCycle: 0.2,
		Weights: []driver.Weighted{{Name: "blackscholes", Weight: 4}, {Name: "kmeans", Weight: 1}}},
}

// ServingOverrides are the CLI-facing knobs (-tenants, -arrival, -qps,
// -duration). Zero values mean "use the study's documented defaults",
// so the committed baselines and CI runs are unaffected by the flags
// existing.
type ServingOverrides struct {
	// Tenants resizes the population: n tenants cycling through the
	// ServingTenants templates.
	Tenants int
	// Arrival forces every tenant onto one arrival process
	// ("poisson", "bursty", "uniform", "closed").
	Arrival string
	// QPS overrides the calibrated capacity as the load-1.0 total
	// offered rate, in requests per simulated second.
	QPS float64
	// Duration fixes every load point's arrival horizon in simulated
	// seconds instead of deriving it from ServingRequestTarget.
	Duration float64
}

// WithServing applies CLI overrides to the serving study.
func WithServing(ov ServingOverrides) Option {
	return func(o *options) { o.serving = ov }
}

// ServingCell is one load point's outcome.
type ServingCell struct {
	// Load is the offered-load fraction of capacity; TotalQPS the
	// resulting offered rate; Horizon the arrival window.
	Load     float64
	TotalQPS float64
	Horizon  float64
	Res      *driver.Result
}

// ServingResult is the full sweep.
type ServingResult struct {
	// MeanService is the calibrated mix-weighted solo service time per
	// request; CapacityQPS = ServingMaxInFlight / MeanService is the
	// load-1.0 offered rate.
	MeanService float64
	CapacityQPS float64
	Cells       []ServingCell

	// Rec is the structured trace of the highest-load run — the
	// timeline that shows queue depth and in-flight saturating.
	Rec *trace.Recorder
}

// CellAt returns the cell for one load fraction.
func (r *ServingResult) CellAt(load float64) (ServingCell, bool) {
	for _, c := range r.Cells {
		if c.Load == load {
			return c, true
		}
	}
	return ServingCell{}, false
}

// servingTenantConfigs instantiates the tenant population for one load
// point: per-tenant QPS splits the total evenly, and the bursty
// template's modulation period is sized to the horizon so several
// on/off cycles land inside the window.
func servingTenantConfigs(specs []ServingTenantSpec, mixes []*driver.Mix,
	perTenantQPS, horizon, meanService float64) []driver.TenantConfig {
	out := make([]driver.TenantConfig, 0, len(specs))
	for i, spec := range specs {
		arr := driver.Arrival{Process: spec.Process, QPS: perTenantQPS}
		switch spec.Process {
		case driver.Bursty:
			arr.BurstFactor = spec.BurstFactor
			arr.DutyCycle = spec.DutyCycle
			arr.Period = spec.Period
			if arr.Period == 0 {
				arr.Period = horizon / 4
			}
		case driver.Closed:
			arr.Workers = ServingMaxInFlight + 2
			arr.Think = meanService / 2
		}
		out = append(out, driver.TenantConfig{Name: spec.Name, Mix: mixes[i], Arrival: arr})
	}
	return out
}

// servingSpecs resolves the tenant templates under the overrides.
func servingSpecs(ov ServingOverrides) []ServingTenantSpec {
	specs := ServingTenants
	if ov.Tenants > 0 {
		specs = make([]ServingTenantSpec, ov.Tenants)
		for i := range specs {
			specs[i] = ServingTenants[i%len(ServingTenants)]
			specs[i].Name = fmt.Sprintf("%s%d", specs[i].Name, i/len(ServingTenants)+1)
			if ov.Tenants <= len(ServingTenants) {
				specs[i].Name = ServingTenants[i].Name
			}
		}
	}
	if ov.Arrival != "" {
		for i := range specs {
			specs[i].Process = driver.Process(ov.Arrival)
		}
	}
	return specs
}

// servingCalibrate measures each scenario's solo warm service time on a
// fresh platform and folds them into the tenant-mix-weighted mean.
func servingCalibrate(specs []ServingTenantSpec, scenarios map[string]*driver.Scenario) (float64, error) {
	solo := map[string]float64{}
	for name, sc := range scenarios {
		p := platform.Default()
		res, err := exec.Run(p, sc.Trace, exec.Options{
			Backend:       sc.Backend,
			Partition:     sc.Partition,
			Estimates:     sc.Estimates,
			OverheadScale: sc.OverheadScale,
			UseCallQueue:  true,
			Warm:          true,
		})
		if err != nil {
			return 0, fmt.Errorf("experiments: serving: calibrate %s: %w", name, err)
		}
		solo[name] = res.Duration
	}
	var mean float64
	for _, spec := range specs {
		var wsum, acc float64
		for _, w := range spec.Weights {
			acc += w.Weight * solo[w.Name]
			wsum += w.Weight
		}
		mean += acc / wsum
	}
	return mean / float64(len(specs)), nil
}

// Serving runs the multi-tenant serving sweep: calibrate capacity from
// solo warm runs, then drive the tenant population at each offered-load
// fraction on its own fresh long-lived platform, fanned out on the
// pool. Load points are independent runs, so -j 1 and -j N produce
// bit-identical rows, manifests, and traces (the per-point recorder is
// private to its platform).
func Serving(params workloads.Params, opts ...Option) (*ServingResult, *report.Table, error) {
	o := buildOptions(opts)
	seed := o.seedOr(ServingSeed)
	ov := o.serving
	specs := servingSpecs(ov)

	// Build every scenario the tenant templates reference once; the
	// load points share them read-only (a Scenario is immutable after
	// construction — the executor never writes through it).
	scenarios := map[string]*driver.Scenario{}
	for _, spec := range specs {
		for _, w := range spec.Weights {
			if scenarios[w.Name] != nil {
				continue
			}
			sc, err := driver.Build(w.Name, params)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: serving: %w", err)
			}
			scenarios[w.Name] = sc
		}
	}
	mixes := make([]*driver.Mix, len(specs))
	for i, spec := range specs {
		entries := make([]driver.MixEntry, 0, len(spec.Weights))
		for _, w := range spec.Weights {
			entries = append(entries, driver.MixEntry{Scenario: scenarios[w.Name], Weight: w.Weight})
		}
		m, err := driver.NewMix(entries...)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: serving: %s: %w", spec.Name, err)
		}
		mixes[i] = m
	}

	meanService, err := servingCalibrate(specs, scenarios)
	if err != nil {
		return nil, nil, err
	}
	capacity := ServingMaxInFlight / meanService
	if ov.QPS > 0 {
		capacity = ov.QPS
	}
	maxLoad := ServingLoads[len(ServingLoads)-1]

	type perLoad struct {
		cell ServingCell
		rec  *trace.Recorder
	}
	per, err := overSpecs(o, len(ServingLoads), func(i int, sopts []Option) (perLoad, error) {
		load := ServingLoads[i]
		so := buildOptions(sopts)
		totalQPS := load * capacity
		horizon := ServingRequestTarget / totalQPS
		if ov.Duration > 0 {
			horizon = ov.Duration
		}
		p := platform.Default()
		var rec *trace.Recorder
		if load == maxLoad {
			rec = trace.New()
			p.SetRecorder(rec)
		}
		res, err := driver.Run(p, driver.Config{
			Seed:        seed,
			Duration:    horizon,
			Tenants:     servingTenantConfigs(specs, mixes, totalQPS/float64(len(specs)), horizon, meanService),
			MaxInFlight: ServingMaxInFlight,
			MaxQueue:    ServingMaxQueue,
			Metrics:     so.metrics,
		})
		if err != nil {
			return perLoad{}, fmt.Errorf("experiments: serving: load %.2f: %w", load, err)
		}
		p.FoldMetrics(so.metrics)
		return perLoad{
			cell: ServingCell{Load: load, TotalQPS: totalQPS, Horizon: horizon, Res: res},
			rec:  rec,
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}

	out := &ServingResult{MeanService: meanService, CapacityQPS: capacity}
	tbl := report.NewTable("Serving: multi-tenant tail latency and fairness vs offered load",
		"load", "tenant", "offered", "admitted", "shed", "completed",
		"p50", "p95", "p99", "fairness")
	for _, pl := range per {
		out.Cells = append(out.Cells, pl.cell)
		if pl.rec != nil {
			out.Rec = pl.rec
		}
		res := pl.cell.Res
		for _, tr := range res.Tenants {
			tbl.AddRow(fmt.Sprintf("%.2f", pl.cell.Load), tr.Name,
				fmt.Sprintf("%d", tr.Offered),
				fmt.Sprintf("%d", tr.Admitted),
				fmt.Sprintf("%d", tr.Shed),
				fmt.Sprintf("%d", tr.Completed),
				fmt.Sprintf("%.4fs", tr.P50),
				fmt.Sprintf("%.4fs", tr.P95),
				fmt.Sprintf("%.4fs", tr.P99),
				"")
		}
		tbl.AddRow(fmt.Sprintf("%.2f", pl.cell.Load), "ALL",
			fmt.Sprintf("%d", res.Offered),
			fmt.Sprintf("%d", res.Admitted),
			fmt.Sprintf("%d", res.Shed),
			fmt.Sprintf("%d", res.Completed),
			"", "", "",
			fmt.Sprintf("%.3f", res.Fairness))
	}
	return out, tbl, nil
}
