package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"activego/internal/platform"
	"activego/internal/trace"
	"activego/internal/workloads"
)

// TestTracingInvariance pins the trace layer's zero-overhead contract the
// way TestRobustnessShape pins the fault layer's rate-0 invariant: a run
// with a recorder attached must be bit-identical — same exec.Result,
// same event count — to the same run without one.
func TestTracingInvariance(t *testing.T) {
	spec, ok := workloads.ByName(UtilizationWorkload)
	if !ok {
		t.Fatalf("unknown workload %q", UtilizationWorkload)
	}
	wb, err := Prepare(spec, testParams())
	if err != nil {
		t.Fatal(err)
	}
	var bareP, tracedP *platform.Platform
	bare, err := wb.RunActivePy(true, func(p *platform.Platform) { bareP = p })
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New()
	traced, err := wb.RunActivePy(true, func(p *platform.Platform) {
		tracedP = p
		p.SetRecorder(rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, traced) {
		t.Errorf("recording perturbed the run:\nbare:   %+v\ntraced: %+v", bare, traced)
	}
	if b, tr := bareP.Sim.EventsFired(), tracedP.Sim.EventsFired(); b != tr {
		t.Errorf("recording changed the event count: %d bare, %d traced", b, tr)
	}
	if len(rec.Spans()) == 0 || len(rec.Counters()) == 0 {
		t.Error("traced run recorded nothing")
	}
}

// TestTraceByteIdentical: same seed, same flags — byte-identical Chrome
// JSON across independent runs.
func TestTraceByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	render := func() []byte {
		u, _, err := Utilization(testParams())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := u.Rec.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Error("same-seed trace JSON differs across runs")
	}
}

// TestUtilizationCoverage checks the traced pipeline run covers the
// stack — spans from at least 5 components, at least 4 counter series,
// every series catalogued — and that the stressed run actually migrates
// so the timeline has its §III-D instant.
func TestUtilizationCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	u, tbl, err := Utilization(testParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s", tbl, u.MigrationTimeline())

	spanComps := map[string]bool{}
	for _, s := range u.Rec.Spans() {
		spanComps[s.Component] = true
	}
	if len(spanComps) < 5 {
		t.Errorf("spans from %d components, want >= 5: %v", len(spanComps), spanComps)
	}
	if n := len(u.Rec.Counters()); n < 4 {
		t.Errorf("%d counter series, want >= 4", n)
	}
	for _, rec := range []*trace.Recorder{u.Rec, u.StressRec} {
		for _, s := range rec.Counters() {
			if !trace.Catalogued(s.Name) {
				t.Errorf("recorded series %q missing from the trace catalogue", s.Name)
			}
		}
	}

	if !u.StressRes.Migrated {
		t.Error("stressed run did not migrate; the timeline study needs the §III-D instant")
	}
	migrated := false
	for _, in := range u.StressRec.Instants() {
		if in.Component == "exec" && in.Name == "migrate" {
			migrated = true
		}
	}
	if !migrated {
		t.Error("stressed recorder has no exec/migrate instant")
	}
	if !strings.Contains(u.MigrationTimeline().String(), "monitor migrates to host") {
		t.Error("migration timeline missing the migration row")
	}
}
