package experiments

import (
	"fmt"
	"math"
	"strings"

	"activego/internal/report"
	"activego/internal/workloads"
)

// AccuracyLine is one source line's predicted-vs-actual data volume.
type AccuracyLine struct {
	Workload  string
	Line      int
	Predicted float64 // bytes the sampling phase extrapolated
	Actual    float64 // bytes the full-scale run produced
	Ratio     float64 // predicted / actual
	IsCSR     bool    // CSR-construction line (the paper's outlier class)
}

// AccuracyResult is the §V prediction-accuracy study.
type AccuracyResult struct {
	Lines []AccuracyLine
	// GeoMeanError is the geometric mean of |ratio-1| over non-outlier
	// lines, matching the paper's "discounting the outliers" metric
	// (paper: 9%).
	GeoMeanError float64
	// MaxCSROverestimate is the largest predicted/actual ratio on CSR
	// lines (paper: up to 2.41x, always >= 1, i.e. conservative).
	MaxCSROverestimate float64
	// CSRAlwaysOver reports whether every CSR line was over-estimated.
	CSRAlwaysOver bool
}

// minActualBytes filters out scalar lines whose volumes are noise.
const minActualBytes = 4096

// Accuracy regenerates the §V prediction-accuracy analysis: for every
// workload, compare the sampling phase's extrapolated per-line output
// volumes against what the full-scale run actually produced. Output
// volume is the paper's headline metric because data reduction is where
// ISP gains come from; CSR construction is the known-hard case (sparsity
// is invisible in prefix samples).
func Accuracy(params workloads.Params, opts ...Option) (*AccuracyResult, *report.Table, error) {
	o := buildOptions(opts)
	specs := workloads.All()
	perSpec, err := overSpecs(o, len(specs), func(i int, sopts []Option) ([]AccuracyLine, error) {
		spec := specs[i]
		wb, err := Prepare(spec, params, sopts...)
		if err != nil {
			return nil, err
		}
		// Actual per-line output volumes from the full-scale trace.
		actual := map[int]float64{}
		for j := range wb.Trace.Records {
			rec := &wb.Trace.Records[j]
			actual[rec.Line] += float64(rec.OutBytes())
		}
		csrLines := csrLineSet(wb.Inst.Source)
		var lines []AccuracyLine
		for _, pred := range wb.Profile.Predictions() {
			act := actual[pred.Line]
			if act < minActualBytes {
				continue
			}
			lines = append(lines, AccuracyLine{
				Workload:  spec.Name,
				Line:      pred.Line,
				Predicted: pred.OutBytes,
				Actual:    act,
				Ratio:     pred.OutBytes / act,
				IsCSR:     csrLines[pred.Line],
			})
		}
		return lines, nil
	})
	if err != nil {
		return nil, nil, err
	}
	res := &AccuracyResult{CSRAlwaysOver: true}
	tbl := report.NewTable("§V prediction accuracy: per-line output volume",
		"workload", "line", "predicted", "actual", "ratio", "csr")
	var logSum float64
	var nNormal int
	for _, lines := range perSpec {
		for _, line := range lines {
			res.Lines = append(res.Lines, line)
			if line.IsCSR {
				if line.Ratio > res.MaxCSROverestimate {
					res.MaxCSROverestimate = line.Ratio
				}
				if line.Ratio < 1 {
					res.CSRAlwaysOver = false
				}
			} else {
				err := math.Abs(line.Ratio - 1)
				if err < 1e-6 {
					err = 1e-6 // exact lines would zero the geomean
				}
				logSum += math.Log(err)
				nNormal++
			}
			tbl.AddRow(line.Workload, fmt.Sprintf("%d", line.Line),
				fmtMB(int64(line.Predicted)), fmtMB(int64(line.Actual)),
				fmt.Sprintf("%.3f", line.Ratio), fmt.Sprintf("%v", line.IsCSR))
		}
	}
	if nNormal > 0 {
		res.GeoMeanError = math.Exp(logSum / float64(nNormal))
	}
	tbl.AddRow("SUMMARY", "", "",
		fmt.Sprintf("geomean err %.1f%%", res.GeoMeanError*100),
		fmt.Sprintf("max CSR over %.2fx", res.MaxCSROverestimate),
		fmt.Sprintf("csr always over: %v", res.CSRAlwaysOver))
	return res, tbl, nil
}

// csrLineSet finds the 1-based source lines that call csr_from_dense or
// csr_from_edges.
func csrLineSet(src string) map[int]bool {
	out := map[int]bool{}
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "csr_from_") {
			out[i+1] = true
		}
	}
	return out
}
