package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"activego/internal/metrics"
	"activego/internal/par"
)

// TestDriftStudyShape pins the study's headline claim: the burst arm's
// availability drop makes the detector flag at least one genuinely
// stale line — one the plan offloaded, whose cost the burst really
// inflated — while the burst-free control arm flags none.
func TestDriftStudyShape(t *testing.T) {
	res, tbl, err := Drift(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Control.Stale) != 0 {
		t.Errorf("control arm flagged %v stale with no burst — false positives", res.Control.Stale)
	}
	if len(res.Burst.Stale) == 0 {
		t.Error("burst arm flagged no stale lines under a 10%% availability burst")
	}
	if got := res.StaleOffloadedOverlap(); got != len(res.Burst.Stale) {
		t.Errorf("burst stale set %v not contained in offloaded set %v (overlap %d)",
			res.Burst.Stale, res.Offloaded, got)
	}
	if len(res.Offloaded) == 0 {
		t.Fatal("plan offloaded nothing; the study needs CSD lines to skew")
	}
	// Staleness must date from the burst, not before it: every stale
	// streak's start window must be at or past the burst instant.
	burstWin := int(res.BurstAt / res.Window)
	for _, ld := range res.Burst.Report.Lines {
		if ld.Stale && ld.StaleSince < burstWin {
			t.Errorf("line %d stale since window %d, before the burst window %d",
				ld.Line, ld.StaleSince, burstWin)
		}
	}
	if res.Provenance == nil || len(res.Provenance.Lines) == 0 {
		t.Error("study result carries no provenance to cross-link")
	}
	if tbl.String() == "" {
		t.Error("empty drift table")
	}
}

// TestDriftParallelInvariance extends the §11 determinism contract to
// the drift study: results, table, manifest JSON, and the metrics
// snapshot — which now includes obs.win.* windowed series — must be
// bit-identical between -j 1 and -j 8.
func TestDriftParallelInvariance(t *testing.T) {
	serialReg := metrics.New()
	serialRes, serialTbl, err := Drift(testParams(), WithMetrics(serialReg))
	if err != nil {
		t.Fatal(err)
	}
	parReg := metrics.New()
	parRes, parTbl, err := Drift(testParams(), WithMetrics(parReg), WithPool(par.New(8)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialRes.Control, parRes.Control) || !reflect.DeepEqual(serialRes.Burst, parRes.Burst) {
		t.Error("drift arms differ under the pool")
	}
	if s, p := serialTbl.String(), parTbl.String(); s != p {
		t.Errorf("drift table differs under the pool:\nserial:\n%s\nparallel:\n%s", s, p)
	}
	serialMan, err := json.Marshal(serialRes.Bench(testParams()))
	if err != nil {
		t.Fatal(err)
	}
	parMan, err := json.Marshal(parRes.Bench(testParams()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialMan, parMan) {
		t.Errorf("drift manifest JSON differs under the pool (%d vs %d bytes)",
			len(serialMan), len(parMan))
	}
	if s, p := canonSnap(serialReg.Snapshot()), canonSnap(parReg.Snapshot()); !reflect.DeepEqual(s, p) {
		t.Errorf("drift metrics snapshot differs under the pool:\nserial:   %+v\nparallel: %+v", s, p)
	}
}
