package experiments

import (
	"reflect"
	"testing"

	"activego/internal/metrics"
	"activego/internal/platform"
	"activego/internal/workloads"
)

// TestMetricsInvariance extends TestTracingInvariance's contract to the
// metrics registry: a run instrumented with WithMetrics must be
// bit-identical — same exec.Result, same event count — to the bare run,
// while the registry actually fills up. Metrics read wall clocks and
// completed results, never the simulation.
func TestMetricsInvariance(t *testing.T) {
	spec, ok := workloads.ByName(UtilizationWorkload)
	if !ok {
		t.Fatalf("unknown workload %q", UtilizationWorkload)
	}
	bareWb, err := Prepare(spec, testParams())
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	instWb, err := Prepare(spec, testParams(), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	var bareP, instP *platform.Platform
	bare, err := bareWb.RunActivePy(true, func(p *platform.Platform) { bareP = p })
	if err != nil {
		t.Fatal(err)
	}
	inst, err := instWb.RunActivePy(true, func(p *platform.Platform) { instP = p })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, inst) {
		t.Errorf("metrics perturbed the run:\nbare:         %+v\ninstrumented: %+v", bare, inst)
	}
	if b, in := bareP.Sim.EventsFired(), instP.Sim.EventsFired(); b != in {
		t.Errorf("metrics changed the event count: %d bare, %d instrumented", b, in)
	}

	snap := reg.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Gauges) == 0 || len(snap.Histograms) == 0 {
		t.Fatalf("instrumented run recorded too little: %d counters, %d gauges, %d histograms",
			len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	}
	// Every recorded name must be in the metric catalogue — the docs
	// tests cross-check the catalogue against DESIGN.md §10, so an
	// uncatalogued name is an undocumented metric.
	for _, s := range snap.Counters {
		if !metrics.Catalogued(s.Name) {
			t.Errorf("counter %q missing from the metric catalogue", s.Name)
		}
	}
	for _, s := range snap.Gauges {
		if !metrics.Catalogued(s.Name) {
			t.Errorf("gauge %q missing from the metric catalogue", s.Name)
		}
	}
	for _, h := range snap.Histograms {
		if !metrics.Catalogued(h.Name) {
			t.Errorf("histogram %q missing from the metric catalogue", h.Name)
		}
	}
	if reg.Counter(metrics.MetricExecRuns).Value() != 1 {
		t.Errorf("exec.runs = %g, want 1", reg.Counter(metrics.MetricExecRuns).Value())
	}
	if reg.Histogram(metrics.PhaseSample).Count() == 0 {
		t.Error("sampling phase timer never fired")
	}
}

// TestManifestBuilders pins the structural contract of the Bench
// converters: direction-tagged simulated values per workload, and the
// planner's offload set on the experiments that have one.
func TestManifestBuilders(t *testing.T) {
	fig4 := &Fig4Result{
		Rows: []Fig4Row{{
			Workload: "tpch-6", BaselineTime: 0.01, StaticSpeedup: 1.3,
			ActivePySpeedup: 1.25, PlanMatches: true, GapPercent: 3.8,
			PlanLines: []int{2, 3},
		}},
		MeanStatic: 1.3, MeanActivePy: 1.25, Matches: 1,
	}
	m := fig4.Bench(testParams())
	if m.Experiment != "fig4" || m.Seed != testParams().Seed || m.ScaleDiv != testParams().ScaleDiv {
		t.Errorf("manifest header: %+v", m)
	}
	if len(m.Workloads) != 2 { // tpch-6 + MEAN
		t.Fatalf("%d workloads", len(m.Workloads))
	}
	w := m.Workloads[0]
	if !reflect.DeepEqual(w.PlanLines, []int{2, 3}) || w.Planner == "" {
		t.Errorf("planner choices not recorded: %+v", w)
	}
	tracked := 0
	for _, v := range w.Values {
		if v.Better != "" {
			tracked++
		}
	}
	if tracked < 3 {
		t.Errorf("fig4 workload tracks %d values, want >= 3 (baseline + both speedups)", tracked)
	}

	rob := &RobustnessResult{Rows: []RobustnessRow{
		{Workload: "tpch-6", Rate: 0, Duration: 0.01, Completed: true},
		{Workload: "tpch-6", Rate: 0.05, Duration: 0.012, Completed: true, Retries: 3},
	}}
	rm := rob.Bench(testParams())
	if len(rm.Workloads) != 1 {
		t.Fatalf("robustness workloads: %d", len(rm.Workloads))
	}
	names := map[string]string{}
	for _, v := range rm.Workloads[0].Values {
		names[v.Name] = v.Better
	}
	if names["duration.seconds@0.00"] == "" || names["completed@0.05"] == "" {
		t.Errorf("robustness tracked values missing: %v", names)
	}
}
