package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"activego/internal/metrics"
	"activego/internal/par"
	"activego/internal/workloads"
)

// canonSnap strips the wall-clock fields (sum, min, max, buckets) from
// the phase.* histograms of a snapshot: those time the host process, so
// they differ between any two runs, serial or not. Their observation
// counts — and every other instrument, all of which read simulated
// results — must stay exact.
func canonSnap(s metrics.Snapshot) metrics.Snapshot {
	for i := range s.Histograms {
		if strings.HasPrefix(s.Histograms[i].Name, "phase.") {
			s.Histograms[i] = metrics.HistogramSnap{Name: s.Histograms[i].Name, Count: s.Histograms[i].Count}
		}
	}
	return s
}

// TestParallelInvariance is the determinism contract of the whole
// parallel layer: every output a user can observe — exec results, plans,
// experiment results, report tables, benchmark manifests, trace JSON,
// metrics snapshots — must be bit-identical between -j 1 and -j 8.
func TestParallelInvariance(t *testing.T) {
	pool := par.New(8)

	// Single pipeline: Prepare (parallel sampling + sharded Optimal) and
	// the execution it feeds.
	spec, ok := workloads.ByName("tpch-6")
	if !ok {
		t.Fatal("unknown workload tpch-6")
	}
	serialWb, err := Prepare(spec, testParams())
	if err != nil {
		t.Fatal(err)
	}
	parWb, err := Prepare(spec, testParams(), WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialWb.Plan, parWb.Plan) {
		t.Errorf("plan differs under the pool:\nserial:   %+v\nparallel: %+v", serialWb.Plan, parWb.Plan)
	}
	if !reflect.DeepEqual(serialWb.Profile, parWb.Profile) {
		t.Error("profile report differs under the pool")
	}
	serialRun, err := serialWb.RunActivePy(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	parRun, err := parWb.RunActivePy(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialRun, parRun) {
		t.Errorf("exec result differs under the pool:\nserial:   %+v\nparallel: %+v", serialRun, parRun)
	}

	// Experiment sweep: results, table, manifest, metrics snapshot.
	serialReg := metrics.New()
	serialRes, serialTbl, err := Fig2(testParams(), WithMetrics(serialReg))
	if err != nil {
		t.Fatal(err)
	}
	parReg := metrics.New()
	parRes, parTbl, err := Fig2(testParams(), WithMetrics(parReg), WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialRes, parRes) {
		t.Errorf("fig2 results differ under the pool:\nserial:   %+v\nparallel: %+v", serialRes, parRes)
	}
	if s, p := serialTbl.String(), parTbl.String(); s != p {
		t.Errorf("fig2 table differs under the pool:\nserial:\n%s\nparallel:\n%s", s, p)
	}
	if !reflect.DeepEqual(serialRes.Bench(testParams()), parRes.Bench(testParams())) {
		t.Error("fig2 manifest differs under the pool")
	}
	if s, p := canonSnap(serialReg.Snapshot()), canonSnap(parReg.Snapshot()); !reflect.DeepEqual(s, p) {
		t.Errorf("fig2 metrics snapshot differs under the pool:\nserial:   %+v\nparallel: %+v", s, p)
	}

	// Resilience sweep: rows, chaos report (its own fan-out rides the
	// pool), manifest, and the breaker arm's trace JSON.
	serialR, _, err := Resilience(testParams())
	if err != nil {
		t.Fatal(err)
	}
	parR, _, err := Resilience(testParams(), WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialR.Rows, parR.Rows) {
		t.Errorf("resilience rows differ under the pool:\nserial:   %+v\nparallel: %+v", serialR.Rows, parR.Rows)
	}
	if !reflect.DeepEqual(serialR.Chaos, parR.Chaos) {
		t.Errorf("chaos report differs under the pool:\nserial:   %+v\nparallel: %+v", serialR.Chaos, parR.Chaos)
	}
	if !reflect.DeepEqual(serialR.Bench(testParams()), parR.Bench(testParams())) {
		t.Error("resilience manifest differs under the pool")
	}
	var serialRJSON, parRJSON bytes.Buffer
	if err := serialR.Rec.WriteChrome(&serialRJSON); err != nil {
		t.Fatal(err)
	}
	if err := parR.Rec.WriteChrome(&parRJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialRJSON.Bytes(), parRJSON.Bytes()) {
		t.Errorf("resilience trace JSON differs under the pool (%d vs %d bytes)",
			serialRJSON.Len(), parRJSON.Len())
	}

	// Trace JSON: the utilization study records full timelines.
	serialU, _, err := Utilization(testParams())
	if err != nil {
		t.Fatal(err)
	}
	parU, _, err := Utilization(testParams(), WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	var serialJSON, parJSON bytes.Buffer
	if err := serialU.Rec.WriteChrome(&serialJSON); err != nil {
		t.Fatal(err)
	}
	if err := parU.Rec.WriteChrome(&parJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON.Bytes(), parJSON.Bytes()) {
		t.Errorf("utilization trace JSON differs under the pool (%d vs %d bytes)",
			serialJSON.Len(), parJSON.Len())
	}
}
