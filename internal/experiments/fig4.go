package experiments

import (
	"fmt"
	"math"

	"activego/internal/report"
	"activego/internal/workloads"
)

// Fig4Row is one application's bar pair in Figure 4.
type Fig4Row struct {
	Workload        string
	BaselineTime    float64
	StaticSpeedup   float64 // optimal programmer-directed C ISP
	ActivePySpeedup float64 // automatic, no hints
	PlanMatches     bool    // ActivePy picked the same line set
	GapPercent      float64 // (static - activepy) / static * 100
	PlanLines       []int   // the offload set ActivePy chose
}

// Fig4Result is the full comparison.
type Fig4Result struct {
	Rows         []Fig4Row
	MeanStatic   float64 // arithmetic mean speedup, as the paper averages
	MeanActivePy float64
	Matches      int
}

// Fig4 regenerates Figure 4: for every Table I application, the speedup
// of the optimal programmer-directed C ISP configuration (found by
// exhaustive search, as the paper's methodology describes) and of
// automatic ActivePy with no hints, both normalized to the no-ISP C
// baseline. The paper reports 1.33x vs 1.34x with ActivePy finding
// exactly the optimal line sets; the reproduction target is that the two
// bars track each other within a few percent on every application.
func Fig4(params workloads.Params, opts ...Option) (*Fig4Result, *report.Table, error) {
	o := buildOptions(opts)
	specs := workloads.TableI()
	rows, err := overSpecs(o, len(specs), func(i int, sopts []Option) (Fig4Row, error) {
		spec := specs[i]
		wb, err := Prepare(spec, params, sopts...)
		if err != nil {
			return Fig4Row{}, err
		}
		auto, err := wb.RunActivePy(true, nil)
		if err != nil {
			return Fig4Row{}, fmt.Errorf("experiments: fig4: %s: %w", spec.Name, err)
		}
		row := Fig4Row{
			Workload:        spec.Name,
			BaselineTime:    wb.Baseline,
			StaticSpeedup:   wb.Baseline / wb.StaticTime,
			ActivePySpeedup: wb.Baseline / auto.Duration,
			PlanMatches:     wb.Plan.Partition.Equal(wb.StaticPart),
			PlanLines:       wb.Plan.Partition.Lines(),
		}
		row.GapPercent = 100 * (row.StaticSpeedup - row.ActivePySpeedup) / row.StaticSpeedup
		return row, nil
	})
	if err != nil {
		return nil, nil, err
	}
	res := &Fig4Result{}
	tbl := report.NewTable("Figure 4: speedup vs no-ISP C baseline",
		"workload", "baseline", "static ISP", "activepy", "plan match", "gap")
	var sumS, sumA float64
	for _, row := range rows {
		res.Rows = append(res.Rows, row)
		sumS += row.StaticSpeedup
		sumA += row.ActivePySpeedup
		if row.PlanMatches {
			res.Matches++
		}
		tbl.AddRow(row.Workload,
			fmt.Sprintf("%.2f ms", row.BaselineTime*1e3),
			fmt.Sprintf("%.3fx", row.StaticSpeedup),
			fmt.Sprintf("%.3fx", row.ActivePySpeedup),
			fmt.Sprintf("%v", row.PlanMatches),
			fmt.Sprintf("%.1f%%", row.GapPercent))
	}
	n := float64(len(res.Rows))
	res.MeanStatic = sumS / n
	res.MeanActivePy = sumA / n
	tbl.AddRow("MEAN", "",
		fmt.Sprintf("%.3fx", res.MeanStatic),
		fmt.Sprintf("%.3fx", res.MeanActivePy),
		fmt.Sprintf("%d/%d", res.Matches, len(res.Rows)),
		fmt.Sprintf("%.1f%%", 100*(res.MeanStatic-res.MeanActivePy)/res.MeanStatic))
	return res, tbl, nil
}

// GeoMean is a helper for harnesses that prefer geometric means.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
