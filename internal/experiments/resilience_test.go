package experiments

import (
	"testing"
)

// The resilience sweep's reproduction target: under oscillating
// availability with in-burst faults, the circuit-breaker ladder must
// beat both the static per-line posture and the one-shot failover —
// and the zero-rate control must show all three arms bit-identical
// (the ladder is free when idle).
func TestResilienceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	res, tbl, err := Resilience(testParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if want := len(ResilienceWorkloads) * len(ResilienceRates); len(res.Rows) != want {
		t.Fatalf("%d rows, want %d", len(res.Rows), want)
	}
	for _, name := range ResilienceWorkloads {
		ctrl, ok := res.RowAt(name, 0)
		if !ok || !ctrl.Completed {
			t.Fatalf("%s: no completed control row", name)
		}
		if ctrl.StaticDur != ctrl.OneshotDur || ctrl.StaticDur != ctrl.BreakerDur {
			t.Errorf("%s: control arms differ: static %.9f oneshot %.9f breaker %.9f",
				name, ctrl.StaticDur, ctrl.OneshotDur, ctrl.BreakerDur)
		}
		if ctrl.BreakerOpens != 0 || ctrl.DegradedLines != 0 || ctrl.Timeouts != 0 || ctrl.DeadlineMisses != 0 {
			t.Errorf("%s: control counted ladder activity: %+v", name, ctrl)
		}
		for _, rate := range ResilienceRates[1:] {
			row, ok := res.RowAt(name, rate)
			if !ok {
				t.Fatalf("%s: no row at rate %v", name, rate)
			}
			if !row.Completed {
				t.Errorf("%s@%.2f: an arm did not complete", name, rate)
				continue
			}
			if row.BreakerOpens == 0 || row.BreakerCloses == 0 {
				t.Errorf("%s@%.2f: breaker never cycled (opens %d closes %d)",
					name, rate, row.BreakerOpens, row.BreakerCloses)
			}
			if row.DegradedLines == 0 {
				t.Errorf("%s@%.2f: no lines ran degraded while open", name, rate)
			}
			// The headline: the breaker must beat both rigid postures.
			// Measured advantages sit at 1.24x-1.95x; 1.05 leaves slack.
			if row.VsStatic < 1.05 {
				t.Errorf("%s@%.2f: breaker vs static %.2fx, want > 1.05x", name, rate, row.VsStatic)
			}
			if row.VsOneshot < 1.05 {
				t.Errorf("%s@%.2f: breaker vs oneshot %.2fx, want > 1.05x", name, rate, row.VsOneshot)
			}
		}
	}
	if res.Chaos == nil {
		t.Fatal("no chaos sub-run report")
	}
	if !res.Chaos.Ok() {
		t.Errorf("chaos sub-run violated an invariant: %s", res.Chaos.Summary())
	}
	if res.Chaos.Completed == 0 {
		t.Error("chaos sub-run: nothing completed")
	}
	if res.Rec == nil {
		t.Error("no trace recorded for the breaker arm")
	}

	// Determinism of the whole sweep: a second pass must be identical.
	again, _, err := Resilience(testParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i] != again.Rows[i] {
			t.Errorf("sweep not reproducible: %+v vs %+v", res.Rows[i], again.Rows[i])
		}
	}
}
