package experiments

import (
	"fmt"

	"activego/internal/driver"
	"activego/internal/exec"
	"activego/internal/obs"
	"activego/internal/plan"
	"activego/internal/platform"
	"activego/internal/report"
	"activego/internal/workloads"
)

// The drift study (ours — no paper counterpart): the planner's placement
// is argued from curves fitted once, at sampling time, but a deployed
// CSD serves for hours while co-tenants come and go. This study runs a
// serving load over one scenario while a Figure 5-style availability
// burst takes the CSE mid-run, and shows the §15 drift detector doing
// its job: the offloaded lines whose real costs the burst inflates — the
// same lines the fig5 migration monitor moves — go model-stale (AV012),
// while a burst-free control arm stays quiet.

// DriftSeed keys the arrival streams; one seed makes both arms
// bit-reproducible.
const DriftSeed = 29

// DriftWorkload is the served scenario: TPC-H Q6, the same canonical
// offload case the utilization study and Figure 5 stress, so the stale
// set can be cross-checked against the lines migration actually moves.
const DriftWorkload = UtilizationWorkload

// DriftAvailability is the burst's CSE availability — Figure 5's
// harsher contention level, where offloaded compute inflates ~10x.
const DriftAvailability = 0.1

// DriftLoad is the offered load as a fraction of the solo serial
// capacity (MaxInFlight is 1, so capacity is 1/solo): high enough to
// fill windows, low enough that the control arm never queues its way
// into false staleness.
const DriftLoad = 0.8

// DriftRequestTarget sizes the arrival horizon: roughly this many
// requests are offered per arm.
const DriftRequestTarget = 48

// DriftArm is one arm's outcome: the serving accounting, the scored
// drift report, and its stale-line set.
type DriftArm struct {
	Name   string
	Burst  bool
	Res    *driver.Result
	Report *obs.DriftReport
	Stale  []int
}

// DriftResult is the full two-arm study.
type DriftResult struct {
	Workload string
	// Solo is the scenario's calibrated warm service time; Window the
	// observation window (2x solo); Horizon each arm's arrival window;
	// BurstAt the stress arrival instant (simulated seconds from start).
	Solo    float64
	Window  float64
	Horizon float64
	BurstAt float64
	// Offloaded is the plan's CSD line set (from provenance), the ground
	// truth the stale set is checked against.
	Offloaded  []int
	Provenance *plan.Provenance
	Control    DriftArm
	Burst      DriftArm
}

// StaleOffloadedOverlap counts the burst arm's stale lines that are in
// the plan's offloaded set — the lines whose model the burst genuinely
// invalidated.
func (r *DriftResult) StaleOffloadedOverlap() int {
	on := map[int]bool{}
	for _, ln := range r.Offloaded {
		on[ln] = true
	}
	n := 0
	for _, ln := range r.Burst.Stale {
		if on[ln] {
			n++
		}
	}
	return n
}

// driftSolo measures the scenario's solo warm service time on a fresh
// platform, exactly as a serving request replays it.
func driftSolo(sc *driver.Scenario) (float64, error) {
	p := platform.Default()
	res, err := exec.Run(p, sc.Trace, exec.Options{
		Backend:       sc.Backend,
		Partition:     sc.Partition,
		Estimates:     sc.Estimates,
		OverheadScale: sc.OverheadScale,
		UseCallQueue:  true,
		Warm:          true,
	})
	if err != nil {
		return 0, err
	}
	return res.Duration, nil
}

// Drift runs the two-arm drift study: identical Poisson serving load on
// fresh platforms, one arm with a mid-horizon availability burst. Arms
// are independent runs fanned out on the pool and assembled in input
// order, so -j 1 and -j N outputs are bit-identical.
func Drift(params workloads.Params, opts ...Option) (*DriftResult, *report.Table, error) {
	o := buildOptions(opts)
	seed := o.seedOr(DriftSeed)
	sc, err := driver.Build(DriftWorkload, params)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: drift: %w", err)
	}
	if sc.Provenance == nil {
		return nil, nil, fmt.Errorf("experiments: drift: scenario %s carries no provenance", sc.Name)
	}
	solo, err := driftSolo(sc)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: drift: calibrate: %w", err)
	}
	qps := DriftLoad / solo
	horizon := DriftRequestTarget / qps
	window := 2 * solo
	burstAt := horizon / 2
	planned := obs.PlannedFromProvenance(sc.Provenance)

	res := &DriftResult{
		Workload:   sc.Name,
		Solo:       solo,
		Window:     window,
		Horizon:    horizon,
		BurstAt:    burstAt,
		Provenance: sc.Provenance,
	}
	for i := range sc.Provenance.Lines {
		lp := &sc.Provenance.Lines[i]
		if lp.OnCSD && lp.Execs > 0 {
			res.Offloaded = append(res.Offloaded, lp.Line)
		}
	}

	arms := []struct {
		name  string
		burst bool
	}{{"control", false}, {"burst", true}}
	per, err := overSpecs(o, len(arms), func(i int, sopts []Option) (DriftArm, error) {
		so := buildOptions(sopts)
		mix, err := driver.NewMix(driver.MixEntry{Scenario: sc, Weight: 1})
		if err != nil {
			return DriftArm{}, fmt.Errorf("experiments: drift: %s: %w", arms[i].name, err)
		}
		p := platform.Default()
		if arms[i].burst {
			p.Dev.ScheduleStress(p.Sim.Now()+burstAt, DriftAvailability, 0)
		}
		col := obs.NewCollector(window, 0)
		dres, err := driver.Run(p, driver.Config{
			Seed:     seed,
			Duration: horizon,
			Tenants: []driver.TenantConfig{{Name: arms[i].name, Mix: mix,
				Arrival: driver.Arrival{Process: driver.Poisson, QPS: qps}}},
			// One service slot: requests serialize, so the control arm's
			// per-line costs carry no cross-request contention the fitted
			// model never saw.
			MaxInFlight: 1,
			MaxQueue:    4,
			Metrics:     so.metrics,
			ObsWindow:   window,
			Obs:         col,
		})
		if err != nil {
			return DriftArm{}, fmt.Errorf("experiments: drift: %s: %w", arms[i].name, err)
		}
		p.FoldMetrics(so.metrics)
		rep := obs.ScoreDrift(col, planned, obs.DefaultDriftConfig())
		col.Windows().Fold(so.metrics)
		rep.Fold(so.metrics)
		return DriftArm{Name: arms[i].name, Burst: arms[i].burst,
			Res: dres, Report: rep, Stale: rep.StaleLines()}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	res.Control, res.Burst = per[0], per[1]

	tbl := report.NewTable(fmt.Sprintf(
		"Drift: %s serving load, CSE availability drops to %.0f%% at t=%.3fs (burst arm)",
		res.Workload, DriftAvailability*100, burstAt),
		"arm", "line", "unit", "planned s/exec", "observed s/exec", "worst", "windows", "diverged", "stale")
	for _, arm := range []*DriftArm{&res.Control, &res.Burst} {
		for _, ld := range arm.Report.Lines {
			stale := "no"
			if ld.Stale {
				stale = fmt.Sprintf("since w%d", ld.StaleSince)
			}
			tbl.AddRow(arm.Name, fmt.Sprintf("%d", ld.Line), ld.Unit,
				fmt.Sprintf("%.6f", ld.Planned),
				fmt.Sprintf("%.6f", ld.Observed),
				fmt.Sprintf("%.2fx", ld.Ratio),
				fmt.Sprintf("%d", ld.Windows),
				fmt.Sprintf("%d", ld.Diverged),
				stale)
		}
		tbl.AddRow(arm.Name, "ALL", "",
			fmt.Sprintf("completed %d", arm.Res.Completed),
			fmt.Sprintf("shed %d", arm.Res.Shed), "", "",
			"", fmt.Sprintf("%d lines", len(arm.Stale)))
	}
	tbl.AddRow("SUMMARY", "", "", "", "", "", "",
		fmt.Sprintf("offloaded %v", res.Offloaded),
		fmt.Sprintf("overlap %d", res.StaleOffloadedOverlap()))
	return res, tbl, nil
}
