package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"activego/internal/par"
	"activego/internal/plan"
	"activego/internal/platform"
)

// TestPlannerFixtureShape pins the fixture generator's structural
// guarantees: the requested line count, chain components of at most
// plannerChainMax lines, and determinism across calls.
func TestPlannerFixtureShape(t *testing.T) {
	for _, lines := range PlannerPoints {
		a := PlannerFixture(lines)
		if len(a) != lines {
			t.Fatalf("PlannerFixture(%d) returned %d lines", lines, len(a))
		}
		if !reflect.DeepEqual(a, PlannerFixture(lines)) {
			t.Errorf("PlannerFixture(%d) is not deterministic", lines)
		}
		// Count distinct chains: every line writes c<chain>.v<pos>.
		chains := map[string]int{}
		for _, e := range a {
			chains[e.Writes[0].Name[:2]]++
		}
		for c, n := range chains {
			if n > plannerChainMax {
				t.Errorf("PlannerFixture(%d): chain %s has %d lines, max %d",
					lines, c, n, plannerChainMax)
			}
		}
	}
}

// TestPlannerExactnessLadder runs every ladder point directly: past the
// old 16-line enumeration cliff the branch-and-bound search must stay
// exact (no node-budget fallback), never lose to the greedy Algorithm 1,
// and match brute-force enumeration wherever enumeration is feasible.
func TestPlannerExactnessLadder(t *testing.T) {
	m := plan.MachineFromPlatform(platform.Default())
	for _, lines := range PlannerPoints {
		pt := plannerPoint(lines, m)
		if !pt.Exact {
			t.Errorf("%d lines: search fell back to Algorithm 1 (budget %d)",
				lines, plan.DefaultBnBNodeBudget)
		}
		if pt.TCSD > pt.GreedyTCSD {
			t.Errorf("%d lines: exact plan (%.6f) worse than greedy (%.6f)",
				lines, pt.TCSD, pt.GreedyTCSD)
		}
		if lines <= plan.MaxOptimalLines && !pt.OptimalMatch {
			t.Errorf("%d lines: branch-and-bound cost differs from enumerated optimum", lines)
		}
	}
}

// TestPlanner30LinesUnder50ms is the acceptance latency bound: a
// 30-viable-line program must plan exactly in under 50 ms per plan.
// The old planner would have silently degraded to Algorithm 1 here.
func TestPlanner30LinesUnder50ms(t *testing.T) {
	m := plan.MachineFromPlatform(platform.Default())
	estimates := PlannerFixture(30)
	cons := plan.Constraints{HostOnly: map[int]string{}}
	var stats plan.BnBStats
	plan.BnBBudget(estimates, cons, m, plan.DefaultBnBNodeBudget, &stats) // warm-up
	if stats.Fallback {
		t.Fatal("30-line fixture fell back to Algorithm 1")
	}
	const iters = 20
	start := time.Now()
	for i := 0; i < iters; i++ {
		plan.BnBBudget(estimates, cons, m, plan.DefaultBnBNodeBudget, nil)
	}
	perOp := time.Since(start) / iters
	if perOp >= 50*time.Millisecond {
		t.Errorf("30-line exact plan took %v per op, acceptance bound is <50ms", perOp)
	}
	t.Logf("30-line exact plan: %v per op (%d nodes)", perOp, stats.Nodes)
}

// TestPlannerCacheStudy pins the memoization half's acceptance
// criteria: a warm serving fleet must exceed a 90%% plan-cache hit
// rate and every warm scenario must be structurally identical to the
// cold build it memoizes.
func TestPlannerCacheStudy(t *testing.T) {
	res, tbl, err := Planner(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(tbl.String()) == 0 {
		t.Error("empty report table")
	}
	c := res.Cache
	if want := PlannerCacheTenants * len(PlannerCacheWorkloads); c.Builds != want {
		t.Errorf("builds = %d, want %d", c.Builds, want)
	}
	if got := c.Hits + c.Misses; got != uint64(c.Builds) {
		t.Errorf("hits+misses = %d, want %d lookups (one per build)", got, c.Builds)
	}
	if c.HitRate <= 0.9 {
		t.Errorf("warm hit rate %.3f, acceptance bound is >0.9", c.HitRate)
	}
	if !c.HitIdentical {
		t.Error("warm scenarios are not bit-identical to the cold builds")
	}
	if c.Completed == 0 || c.Offered == 0 {
		t.Errorf("warm serving run did nothing: completed %d / offered %d", c.Completed, c.Offered)
	}
	for _, pt := range res.Points {
		if !pt.Exact {
			t.Errorf("%d lines: study point not exact", pt.Lines)
		}
	}
}

// TestPlannerParallelInvariance extends the determinism contract to the
// planner study: results, table, and benchmark-manifest bytes must be
// identical between -j 1 and -j 8.
func TestPlannerParallelInvariance(t *testing.T) {
	serial, serialTbl, err := Planner(testParams())
	if err != nil {
		t.Fatal(err)
	}
	parallel, parTbl, err := Planner(testParams(), WithPool(par.New(8)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("planner results differ under the pool:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if s, p := serialTbl.String(), parTbl.String(); s != p {
		t.Errorf("planner table differs under the pool:\nserial:\n%s\nparallel:\n%s", s, p)
	}
	var sb, pb bytes.Buffer
	if err := serial.Bench(testParams()).Write(&sb); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Bench(testParams()).Write(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Errorf("planner manifest bytes differ under the pool (%d vs %d bytes)", sb.Len(), pb.Len())
	}
}
