package experiments

import (
	"testing"

	"activego/internal/workloads"
)

// testParams runs the harnesses at a reduced scale to keep the suite
// quick; shape assertions hold from ~2 MB instances upward.
func testParams() workloads.Params {
	return workloads.Params{ScaleDiv: 2048, Seed: 42}
}

func TestTable1(t *testing.T) {
	rows, tbl, err := Table1(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("Table I must list 9 applications, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Regions < 4 {
			t.Errorf("%s: only %d SESE regions; programs must give the planner choices", r.Name, r.Regions)
		}
		if r.ScaledBytes <= 0 || r.PaperBytes <= 0 {
			t.Errorf("%s: bad sizes %d/%d", r.Name, r.ScaledBytes, r.PaperBytes)
		}
	}
	if tbl.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	res, tbl, err := Fig2(testParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	for _, w := range Fig2Workloads {
		full := res.SpeedupAt(w, 1.0)
		if full < 1.10 {
			t.Errorf("%s: static ISP at 100%% CSE should clearly win, got %.3fx", w, full)
		}
		low := res.SpeedupAt(w, 0.1)
		if low > 1.0 {
			t.Errorf("%s: static ISP at 10%% CSE should lose to the baseline, got %.3fx", w, low)
		}
		cross := res.Crossover(w)
		if cross < 0.1 || cross > 0.7 {
			t.Errorf("%s: crossover at %.0f%% availability, expected within [10%%, 70%%]", w, cross*100)
		}
		// Monotone-ish: speedup at 100% must exceed speedup at 10%.
		if full <= low {
			t.Errorf("%s: speedup should degrade with availability (%.3f vs %.3f)", w, full, low)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	res, tbl, err := Fig4(testParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if len(res.Rows) != 9 {
		t.Fatalf("Figure 4 covers 9 applications, got %d", len(res.Rows))
	}
	if res.MeanStatic < 1.1 {
		t.Errorf("mean static ISP speedup %.3fx; paper band is ~1.33x", res.MeanStatic)
	}
	if res.MeanActivePy < 1.1 {
		t.Errorf("mean ActivePy speedup %.3fx; paper band is ~1.34x", res.MeanActivePy)
	}
	gap := (res.MeanStatic - res.MeanActivePy) / res.MeanStatic
	if gap > 0.06 {
		t.Errorf("ActivePy trails hand-tuned ISP by %.1f%%; paper reports ~1%%", gap*100)
	}
	if res.Matches < len(res.Rows)/2 {
		t.Errorf("only %d/%d plans match the exhaustive optimum", res.Matches, len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.ActivePySpeedup < 0.93 {
			t.Errorf("%s: ActivePy must not lose badly to the baseline, got %.3fx", r.Workload, r.ActivePySpeedup)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	res, tbl, err := Fig5(testParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if adv := res.MigrationAdvantage(0.1); adv < 1.2 {
		t.Errorf("migration advantage at 10%% availability is %.2fx; paper reports 2.82x", adv)
	}
	if slow := res.MeanSlowdownWithMigration(0.1); slow > 0.35 {
		t.Errorf("with migration, mean slowdown vs baseline is %.0f%%; paper reports ~8%%", slow*100)
	}
	mean, max := res.LossWithoutMigration(0.1)
	if mean < 0.2 {
		t.Errorf("without migration at 10%%, mean loss %.0f%%; paper reports 67%%", mean*100)
	}
	if max < mean {
		t.Errorf("max loss %.0f%% below mean %.0f%%", max*100, mean*100)
	}
	// At 50% availability migration should help or at least not hurt much.
	if adv := res.MigrationAdvantage(0.5); adv < 0.95 {
		t.Errorf("migration advantage at 50%% availability is %.2fx", adv)
	}
}

func TestRobustnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	res, tbl, err := Robustness(testParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if len(res.Rows) != len(RobustnessWorkloads)*len(RobustnessRates) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(RobustnessWorkloads)*len(RobustnessRates))
	}
	if !res.CompletedAll(0) {
		t.Fatal("a zero-fault control run did not complete")
	}
	for _, name := range RobustnessWorkloads {
		spec, _ := workloads.ByName(name)
		wb, err := Prepare(spec, testParams())
		if err != nil {
			t.Fatal(err)
		}
		// Armed-but-idle must reproduce the bare ActivePy run exactly —
		// the fault machinery is free when nothing fires.
		bare, err := wb.RunActivePy(false, nil)
		if err != nil {
			t.Fatal(err)
		}
		ctrl, _ := res.RowAt(name, 0)
		if ctrl.Duration != bare.Duration {
			t.Errorf("%s: zero-fault control %.9fs != bare run %.9fs", name, ctrl.Duration, bare.Duration)
		}
		if ctrl.Retries != 0 || ctrl.Timeouts != 0 || ctrl.FailedCalls != 0 {
			t.Errorf("%s: control counted failures: %+v", name, ctrl)
		}
		// Injected faults must cost time and show up in the counters, and
		// recovery must keep every run completing.
		for _, rate := range RobustnessRates[1:] {
			row, ok := res.RowAt(name, rate)
			if !ok {
				t.Fatalf("%s: no row at rate %v", name, rate)
			}
			if !row.Completed {
				t.Errorf("%s@%.2f: recovery did not complete the run", name, rate)
				continue
			}
			if row.Retries == 0 && row.Timeouts == 0 {
				t.Errorf("%s@%.2f: no retries or timeouts at a positive rate", name, rate)
			}
			if row.Overhead < 0 {
				t.Errorf("%s@%.2f: faulted run faster than clean (%+.1f%%)", name, rate, row.Overhead*100)
			}
		}
	}
	// Determinism of the whole sweep: a second pass must be identical.
	again, _, err := Robustness(testParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i] != again.Rows[i] {
			t.Errorf("sweep not reproducible: %+v vs %+v", res.Rows[i], again.Rows[i])
		}
	}
}

func TestAccuracyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	res, tbl, err := Accuracy(testParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if res.GeoMeanError > 0.35 {
		t.Errorf("geomean volume-prediction error %.0f%%; paper reports 9%%", res.GeoMeanError*100)
	}
	if res.MaxCSROverestimate < 1.3 || res.MaxCSROverestimate > 4.5 {
		t.Errorf("max CSR over-estimate %.2fx; paper reports up to 2.41x", res.MaxCSROverestimate)
	}
	if !res.CSRAlwaysOver {
		t.Error("CSR predictions must be conservative (always over-estimates), as the paper observes")
	}
}

func TestRuntimeOptShape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test")
	}
	res, tbl, err := RuntimeOpt(testParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if res.MeanInterp < res.MeanCython || res.MeanCython < res.MeanNative {
		t.Errorf("ladder must be ordered interp >= cython >= native: %.2f %.2f %.2f",
			res.MeanInterp, res.MeanCython, res.MeanNative)
	}
	if res.MeanInterp < 0.20 || res.MeanInterp > 0.80 {
		t.Errorf("interpreted slowdown %.0f%%; paper band ~41%%", res.MeanInterp*100)
	}
	if res.MeanCython < 0.08 || res.MeanCython > 0.45 {
		t.Errorf("cython slowdown %.0f%%; paper band ~20%%", res.MeanCython*100)
	}
	if res.MeanNative > 0.06 {
		t.Errorf("native slowdown %.1f%%; paper band ~1%%", res.MeanNative*100)
	}
}
