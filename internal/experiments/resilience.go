package experiments

import (
	"fmt"

	"activego/internal/chaos"
	"activego/internal/codegen"
	"activego/internal/core"
	"activego/internal/exec"
	"activego/internal/fault"
	"activego/internal/nvme"
	"activego/internal/platform"
	"activego/internal/report"
	"activego/internal/resilience"
	"activego/internal/trace"
	"activego/internal/workloads"
)

// The resilience study (ours — no paper counterpart): the paper's §III-D
// machinery assumes the device either stays healthy or degrades once;
// this sweep makes availability *oscillate* — fault bursts arrive, pass,
// and return — and compares three failure-handling postures:
//
//   - static: per-line recovery only. A failed line retries, falls back
//     to the host once, and the very next line returns to the sick
//     device — the run re-pays the fault detection cost every line for
//     as long as a burst lasts.
//   - oneshot: PR-1's failover (exec.DefaultRecovery) — the first CSD
//     line failure moves the whole remaining partition to the host,
//     forever. Robust, but the run forfeits the device's healthy
//     periods after the first burst.
//   - breaker: the full resilience ladder — the circuit breaker opens
//     after consecutive faults, the run degrades to the host only while
//     the burst lasts, and a half-open probe re-admits offload when the
//     device recovers.
//
// The sweep ends with a chaos sub-run: a seeded randomized fault
// schedule sweep over the same workload, checking that every schedule
// terminates with a correct result or a typed clean failure.

// ResilienceWorkloads are the three applications with the most
// offloaded dynamic records — the runs long enough, in units of the
// failure-detection time, for several sick/healthy alternations to land
// inside one execution. (The ladder is workload-agnostic; what the
// burst axis needs is line count.)
var ResilienceWorkloads = []string{"blackscholes", "tpch-6", "mixedgemm"}

// ResilienceRates is the within-burst fault intensity axis: 0 is the
// armed-but-idle control (no bursts, no injections — must reproduce the
// clean numbers exactly in every arm), the rest drop NVMe completions
// and stall the CSE hard enough that line failures arrive in runs and
// the breaker's consecutive-failure threshold actually trips.
var ResilienceRates = []float64{0, 0.5, 0.9}

// ResilienceSeed seeds every fault plan and backoff schedule in the
// sweep; one seed makes the whole table bit-reproducible.
const ResilienceSeed = 11

// ResilienceStressAvail is the CSE availability inside a burst: deep
// enough that an offloaded line under the sag blows far past its line
// deadline — the breaker arm detects the sag as a bounded typed failure
// while the recovery-only arms just sit in it.
const ResilienceStressAvail = 0.05

// ResilienceChaosSchedules sizes the chaos sub-run appended to the
// sweep (the full 1000-schedule bar lives in internal/chaos's own
// tests; the sub-run keeps the experiment honest without dominating it).
const ResilienceChaosSchedules = 48

// ResilienceTraceWorkload is the workload whose worst-burst breaker arm
// is recorded with a full structured trace.
const ResilienceTraceWorkload = "tpch-6"

// ResilienceRow is one (workload, rate) cell: all three arms' durations
// and the breaker arm's ladder counters.
type ResilienceRow struct {
	Workload string
	Rate     float64

	StaticDur  float64
	OneshotDur float64
	BreakerDur float64

	// VsStatic / VsOneshot are the breaker arm's advantage ratios
	// (other arm's duration / breaker duration; >1 means the breaker won).
	VsStatic  float64
	VsOneshot float64

	BreakerOpens   uint64
	BreakerCloses  uint64
	BreakerProbes  uint64
	DegradedLines  uint64
	DeadlineMisses uint64
	Retries        uint64
	Timeouts       uint64

	OneshotFailedOver bool
	Completed         bool // all three arms finished
}

// ResilienceResult is the full sweep plus the chaos sub-run.
type ResilienceResult struct {
	Rows  []ResilienceRow
	Chaos *chaos.Report

	// Rec is the structured trace of ResilienceTraceWorkload's breaker
	// arm at the highest burst intensity — the timeline that shows the
	// open/degrade/probe/re-close cadence.
	Rec *trace.Recorder
}

// RowAt returns the cell for one workload and rate.
func (r *ResilienceResult) RowAt(workload string, rate float64) (ResilienceRow, bool) {
	for _, row := range r.Rows {
		if row.Workload == workload && row.Rate == rate {
			return row, true
		}
	}
	return ResilienceRow{}, false
}

// worstLine is the costliest offloaded line's per-exec device time from
// the plan's own §III-A estimates — the natural time unit for failure
// detection: completion timers, line deadlines, backoff delays, and
// burst geometry all scale with it, so the sweep behaves the same at
// any -scalediv.
func (wb *Workbench) worstLine() float64 {
	worst := 0.0
	for _, est := range wb.Plan.ByLine() {
		if est.Execs <= 0 {
			continue
		}
		if per := est.DevTotal() / est.Execs; per > worst {
			worst = per
		}
	}
	return worst
}

// resilienceRetry derives the NVMe command supervision from the plan's
// own estimates, like the robustness sweep's adaptiveRetry — but tight:
// the completion timer sits at 2.5x the costliest offloaded line, so a
// dropped completion is detected on the same time scale as the work it
// supervises and a healthy line never trips it.
func (wb *Workbench) resilienceRetry() nvme.RetryPolicy {
	worst := wb.worstLine()
	floor := 10e-3 * wb.Params.OverheadScale()
	return nvme.RetryPolicy{Timeout: 2.5*worst + floor, MaxAttempts: 2, Backoff: worst / 4}
}

// resiliencePolicy derives the ladder from the retry policy: the line
// deadline sits just above the completion timer — a healthy line fits
// easily, a line running under a deep availability sag blows past it
// and becomes a bounded typed failure — backoff delays sit under one
// timeout, and the breaker opens on the first failure: with deep sags,
// one deadline miss is already a reliable signal, and a cheap half-open
// probe corrects any false open one cooldown later. The cooldown is
// chosen against the burst length by the caller.
func resiliencePolicy(seed uint64, retry nvme.RetryPolicy, cooldown float64) resilience.Policy {
	return resilience.Policy{
		LineDeadline: 1.2 * retry.Timeout,
		LineRetries:  1,
		Backoff: resilience.Backoff{
			Base: retry.Timeout / 8, Factor: 2, Cap: retry.Timeout / 2,
			Jitter: 0.25, Seed: seed,
		},
		Breaker: resilience.BreakerPolicy{Threshold: 1, Cooldown: cooldown},
	}
}

// resilienceBursts describes the oscillation: burst k covers
// [start+k*period, start+k*period+dur), alternating sick and healthy
// windows. Bursts are sized in retry-timeout units — long enough that a
// full detect-retry-exhaust cycle completes inside one burst (so
// failures cannot escape into the next healthy window) — and there are
// enough of them to keep flapping for the whole stretched run.
type resilienceBursts struct {
	start, dur, period float64
	count              int
}

func burstsFor(cleanDur, timeout float64) resilienceBursts {
	return resilienceBursts{
		start:  cleanDur / 8,
		dur:    4 * timeout,
		period: 8 * timeout,
		count:  12,
	}
}

// install schedules the availability sags and returns the windowed
// fault rules for one intensity; rate 0 means no bursts and an
// armed-but-idle plan.
func (b resilienceBursts) install(p *platform.Platform, rate float64) []fault.Rule {
	if rate <= 0 {
		return []fault.Rule{
			{Point: fault.NVMeCompletionDrop, Rate: 0},
			{Point: fault.CSEStall, Rate: 0, Duration: 1e-3},
		}
	}
	var rules []fault.Rule
	for k := 0; k < b.count; k++ {
		at := b.start + float64(k)*b.period
		p.Dev.ScheduleStress(at, ResilienceStressAvail, b.dur)
		rules = append(rules,
			fault.Rule{Point: fault.NVMeCompletionDrop, Rate: rate, Start: at, End: at + b.dur})
	}
	return rules
}

// runResilienceArm executes one arm of one cell on a fresh platform
// with the bursts scheduled and the plan installed.
func (wb *Workbench) runResilienceArm(seed uint64, bursts resilienceBursts, rate float64,
	retry nvme.RetryPolicy, opts exec.Options, rec *trace.Recorder) (*exec.Result, error) {
	p := platform.Default()
	if rec != nil {
		p.SetRecorder(rec)
	}
	rules := bursts.install(p, rate)
	plan, err := fault.NewPlanChecked(seed, rules...)
	if err != nil {
		return nil, err
	}
	p.InstallFaults(plan, retry)
	opts.Backend = codegen.Native
	opts.Partition = wb.Plan.Partition
	opts.Estimates = wb.Plan.ByLine()
	opts.SamplingOverhead = core.SamplingOverhead
	opts.OverheadScale = wb.Params.OverheadScale()
	opts.UseCallQueue = true
	opts.Metrics = wb.Metrics
	res, rerr := exec.Run(p, wb.Trace, opts)
	p.FoldMetrics(wb.Metrics)
	return res, rerr
}

// ChaosSweep runs a standalone chaos sweep: n randomized seeded fault
// schedules over ResilienceTraceWorkload's trace with the same derived
// ladder the resilience experiment arms. cmd/benchsuite's -chaos flag
// and CI's chaos job call this.
func ChaosSweep(params workloads.Params, seed uint64, n int, opts ...Option) (*chaos.Report, error) {
	o := buildOptions(opts)
	spec, ok := workloads.ByName(ResilienceTraceWorkload)
	if !ok {
		return nil, fmt.Errorf("experiments: chaos: no workload %q", ResilienceTraceWorkload)
	}
	wb, err := Prepare(spec, params, opts...)
	if err != nil {
		return nil, err
	}
	retry := wb.resilienceRetry()
	return chaos.Run(chaos.Config{
		Seed:          seed,
		Schedules:     n,
		Trace:         wb.Trace,
		Partition:     wb.Plan.Partition,
		Backend:       codegen.Native,
		Policy:        resiliencePolicy(seed, retry, 4*retry.Timeout),
		Retry:         retry,
		OverheadScale: wb.Params.OverheadScale(),
		Params:        chaos.ScheduleParams{MaxRate: 1.0},
		Pool:          o.pool,
	})
}

// Resilience sweeps oscillating availability against fault intensity
// and compares the static, one-shot-failover, and circuit-breaker
// postures, then runs the chaos sub-run. The zero-rate column doubles
// as the cost-free-when-idle check: all three arms must produce the
// same clean duration.
func Resilience(params workloads.Params, opts ...Option) (*ResilienceResult, *report.Table, error) {
	o := buildOptions(opts)
	seed := o.seedOr(ResilienceSeed)
	maxRate := ResilienceRates[len(ResilienceRates)-1]
	type perSpec struct {
		rows  []ResilienceRow
		chaos *chaos.Report
		rec   *trace.Recorder
	}
	per, err := overSpecs(o, len(ResilienceWorkloads), func(i int, sopts []Option) (perSpec, error) {
		name := ResilienceWorkloads[i]
		spec, ok := workloads.ByName(name)
		if !ok {
			return perSpec{}, fmt.Errorf("experiments: resilience: no workload %q", name)
		}
		wb, err := Prepare(spec, params, sopts...)
		if err != nil {
			return perSpec{}, err
		}
		retry := wb.resilienceRetry()

		// Armed-but-idle breaker run: the control duration that also
		// calibrates the burst timeline and the breaker cooldown.
		pol := resiliencePolicy(seed, retry, 0)
		clean, err := wb.runResilienceArm(seed, resilienceBursts{}, 0, retry,
			exec.Options{Resilience: &pol}, nil)
		if err != nil {
			return perSpec{}, fmt.Errorf("experiments: resilience: %s control: %w", name, err)
		}
		bursts := burstsFor(clean.Duration, retry.Timeout)
		pol = resiliencePolicy(seed, retry, bursts.dur)

		out := perSpec{}
		for _, rate := range ResilienceRates {
			row := ResilienceRow{Workload: name, Rate: rate}
			static, serr := wb.runResilienceArm(seed, bursts, rate, retry, exec.Options{
				Recovery: exec.RecoveryPolicy{Enabled: true, LineRetries: 1},
			}, nil)
			oneshot, oerr := wb.runResilienceArm(seed, bursts, rate, retry, exec.Options{
				Recovery: exec.DefaultRecovery(),
			}, nil)
			var rec *trace.Recorder
			if name == ResilienceTraceWorkload && rate == maxRate {
				rec = trace.New()
				out.rec = rec
			}
			breaker, berr := wb.runResilienceArm(seed, bursts, rate, retry, exec.Options{
				Resilience: &pol,
			}, rec)
			if rate == 0 && (serr != nil || oerr != nil || berr != nil) {
				return perSpec{}, fmt.Errorf("experiments: resilience: %s control arm failed: %v %v %v",
					name, serr, oerr, berr)
			}
			if serr == nil && oerr == nil && berr == nil {
				row.Completed = true
				row.StaticDur = static.Duration
				row.OneshotDur = oneshot.Duration
				row.BreakerDur = breaker.Duration
				row.VsStatic = static.Duration / breaker.Duration
				row.VsOneshot = oneshot.Duration / breaker.Duration
				row.BreakerOpens = breaker.BreakerOpens
				row.BreakerCloses = breaker.BreakerCloses
				row.BreakerProbes = breaker.BreakerProbes
				row.DegradedLines = breaker.DegradedLines
				row.DeadlineMisses = breaker.DeadlineMisses
				row.Retries = breaker.Retries
				row.Timeouts = breaker.Timeouts
				row.OneshotFailedOver = oneshot.FailoverMigrated
			}
			out.rows = append(out.rows, row)
		}

		// Chaos sub-run on the traced workload: randomized schedules over
		// the same trace and ladder.
		if name == ResilienceTraceWorkload {
			rep, err := chaos.Run(chaos.Config{
				Seed:          seed,
				Schedules:     ResilienceChaosSchedules,
				Trace:         wb.Trace,
				Partition:     wb.Plan.Partition,
				Backend:       codegen.Native,
				Policy:        pol,
				Retry:         retry,
				OverheadScale: wb.Params.OverheadScale(),
				Params:        chaos.ScheduleParams{MaxRate: 1.0},
				Pool:          buildOptions(sopts).pool,
			})
			if err != nil {
				return perSpec{}, fmt.Errorf("experiments: resilience: %s chaos: %w", name, err)
			}
			out.chaos = rep
		}
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}

	res := &ResilienceResult{}
	tbl := report.NewTable("Resilience: breaker vs static vs one-shot failover under oscillating faults",
		"workload", "rate", "static", "oneshot", "breaker", "vs static", "vs oneshot",
		"opens", "closes", "probes", "degraded", "completed")
	for _, ps := range per {
		if ps.chaos != nil {
			res.Chaos = ps.chaos
		}
		if ps.rec != nil {
			res.Rec = ps.rec
		}
		for _, row := range ps.rows {
			res.Rows = append(res.Rows, row)
			tbl.AddRow(row.Workload, fmt.Sprintf("%.2f", row.Rate),
				fmt.Sprintf("%.4fs", row.StaticDur),
				fmt.Sprintf("%.4fs", row.OneshotDur),
				fmt.Sprintf("%.4fs", row.BreakerDur),
				fmt.Sprintf("%.2fx", row.VsStatic),
				fmt.Sprintf("%.2fx", row.VsOneshot),
				fmt.Sprintf("%d", row.BreakerOpens),
				fmt.Sprintf("%d", row.BreakerCloses),
				fmt.Sprintf("%d", row.BreakerProbes),
				fmt.Sprintf("%d", row.DegradedLines),
				fmt.Sprintf("%v", row.Completed))
		}
	}
	return res, tbl, nil
}
