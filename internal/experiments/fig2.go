package experiments

import (
	"fmt"

	"activego/internal/platform"
	"activego/internal/report"
	"activego/internal/workloads"
)

// Fig2Availabilities is the x-axis of Figure 2: the fraction of CSE time
// available to the ISP workload.
var Fig2Availabilities = []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}

// Fig2Workloads are the three TPC-H queries Figure 2 uses (the workloads
// Summarizer evaluated).
var Fig2Workloads = []string{"tpch-1", "tpch-6", "tpch-14"}

// Fig2Point is one (workload, availability) measurement.
type Fig2Point struct {
	Workload     string
	Availability float64
	Speedup      float64 // static C ISP vs no-ISP baseline
}

// Fig2Result is the full sweep.
type Fig2Result struct {
	Points []Fig2Point
}

// Crossover returns, for one workload, the largest swept availability at
// which the static ISP program is slower than the baseline (speedup < 1);
// 0 if it never loses.
func (r *Fig2Result) Crossover(workload string) float64 {
	cross := 0.0
	for _, p := range r.Points {
		if p.Workload == workload && p.Speedup < 1 && p.Availability > cross {
			cross = p.Availability
		}
	}
	return cross
}

// SpeedupAt returns the speedup of a workload at an availability.
func (r *Fig2Result) SpeedupAt(workload string, avail float64) float64 {
	for _, p := range r.Points {
		if p.Workload == workload && p.Availability == avail {
			return p.Speedup
		}
	}
	return 0
}

// Fig2 regenerates Figure 2: three TPC-H workloads optimized the
// Summarizer way — static C ISP code tuned exhaustively assuming a fully
// available CSE — then run under progressively less available CSE time.
// The paper's point: above ~1.25x at 100%, performance loss once less
// than roughly half the CSE is available, because a static framework
// cannot move the work back.
func Fig2(params workloads.Params, opts ...Option) (*Fig2Result, *report.Table, error) {
	o := buildOptions(opts)
	type perWorkload struct {
		points []Fig2Point
		cells  []string
	}
	outs, err := overSpecs(o, len(Fig2Workloads), func(wi int, sopts []Option) (perWorkload, error) {
		name := Fig2Workloads[wi]
		spec, ok := workloads.ByName(name)
		if !ok {
			return perWorkload{}, fmt.Errorf("experiments: fig2: no workload %q", name)
		}
		wb, err := Prepare(spec, params, sopts...)
		if err != nil {
			return perWorkload{}, err
		}
		out := perWorkload{cells: []string{name}}
		for _, avail := range Fig2Availabilities {
			a := avail
			run, err := wb.RunStatic(func(p *platform.Platform) { p.Dev.SetAvailability(a) })
			if err != nil {
				return perWorkload{}, fmt.Errorf("experiments: fig2: %s@%.0f%%: %w", name, a*100, err)
			}
			sp := wb.Baseline / run.Duration
			out.points = append(out.points, Fig2Point{Workload: name, Availability: a, Speedup: sp})
			out.cells = append(out.cells, fmt.Sprintf("%.2f", sp))
		}
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}
	res := &Fig2Result{}
	tbl := report.NewTable("Figure 2: static C ISP speedup vs CSE availability",
		append([]string{"workload"}, availHeaders()...)...)
	for _, out := range outs {
		res.Points = append(res.Points, out.points...)
		tbl.AddRow(out.cells...)
	}
	return res, tbl, nil
}

func availHeaders() []string {
	out := make([]string, len(Fig2Availabilities))
	for i, a := range Fig2Availabilities {
		out[i] = fmt.Sprintf("%.0f%%", a*100)
	}
	return out
}
