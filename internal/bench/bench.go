// Package bench makes benchmark runs machine-comparable: every
// benchsuite experiment serializes a schema-versioned run manifest
// (BENCH_<exp>.json) carrying the environment (git revision, Go
// version, seed, scale), per-workload measured values with explicit
// better-is directions, the planner's choices, a metrics snapshot, and
// Go runtime stats — and Compare diffs two manifests benchstat-style
// with configurable regression thresholds, so CI can gate on "did this
// PR make anything slower".
//
// Only simulated quantities are gated: the simulator is deterministic,
// so a tracked value that moves between two revisions moved because the
// code changed, not because the machine was noisy. Wall-clock material
// (the metrics snapshot's phase timers, runtime stats, creation time)
// rides along as context and is never compared.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"

	"activego/internal/metrics"
)

// Schema is the manifest schema version; bump on incompatible layout
// changes. Compare refuses manifests with mismatched schemas.
const Schema = 1

// Direction of a tracked value: which way is better. Values with an
// empty direction are informational and never gated.
const (
	LowerIsBetter  = "lower"
	HigherIsBetter = "higher"
)

// Value is one named, gated or informational measurement of a workload.
type Value struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// Better is LowerIsBetter, HigherIsBetter, or "" (informational).
	Better string `json:"better,omitempty"`
}

// Workload is one application's results within a manifest.
type Workload struct {
	Name string `json:"name"`
	// Planner names the algorithm that produced the partition (plan
	// package labels), empty when the experiment has no planning step.
	Planner string `json:"planner,omitempty"`
	// PlanLines is the offloaded line set the planner chose.
	PlanLines []int `json:"plan_lines,omitempty"`
	// Migrated reports whether the §III-D monitor moved the task.
	Migrated bool    `json:"migrated,omitempty"`
	Values   []Value `json:"values"`
}

// Add appends a measured value.
func (w *Workload) Add(name string, v float64, unit, better string) {
	w.Values = append(w.Values, Value{Name: name, Value: v, Unit: unit, Better: better})
}

// RuntimeStats captures the Go runtime's view of the producing process —
// informational only (wall-clock side of the run).
type RuntimeStats struct {
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
	NumGoroutine    int    `json:"num_goroutine"`
}

// Manifest is one experiment run, serialized as BENCH_<exp>.json.
type Manifest struct {
	Schema     int    `json:"schema"`
	Experiment string `json:"experiment"`

	// Environment. GitRev is best-effort (build info carries it only in
	// VCS-stamped builds); the rest always populate.
	GitRev    string `json:"git_rev,omitempty"`
	GitDirty  bool   `json:"git_dirty,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	// Run parameters: the seed and scale divisor that make the simulated
	// numbers reproducible.
	Seed     int64 `json:"seed"`
	ScaleDiv int64 `json:"scalediv"`

	// CreatedUnix is the wall-clock creation time; informational.
	CreatedUnix int64 `json:"created_unix,omitempty"`

	Workloads []Workload `json:"workloads"`

	// Metrics is the producing process's registry snapshot (phase
	// timers, executor counters, trace-derived gauges); informational.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
	// Runtime is the producing process's Go runtime stats; informational.
	Runtime *RuntimeStats `json:"runtime,omitempty"`
}

// NewManifest builds a manifest shell for one experiment, stamping the
// environment (git revision from build info when available) and run
// parameters. Callers append Workloads and optionally attach Metrics,
// Runtime, and CreatedUnix.
func NewManifest(experiment string, seed, scaleDiv int64) *Manifest {
	m := &Manifest{
		Schema:     Schema,
		Experiment: experiment,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Seed:       seed,
		ScaleDiv:   scaleDiv,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRev = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	return m
}

// CaptureRuntime fills Runtime from the current process.
func (m *Manifest) CaptureRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Runtime = &RuntimeStats{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		NumGC:           ms.NumGC,
		NumGoroutine:    runtime.NumGoroutine(),
	}
}

// Workload returns the named workload entry, nil when absent.
func (m *Manifest) Workload(name string) *Workload {
	for i := range m.Workloads {
		if m.Workloads[i].Name == name {
			return &m.Workloads[i]
		}
	}
	return nil
}

// Write serializes the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = m.Write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Read parses a manifest, rejecting unknown schema versions (a v0/v2
// file comparing clean against a v1 baseline would be a silent lie).
func Read(r io.Reader) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("bench: parse manifest: %w", err)
	}
	if m.Schema != Schema {
		return nil, fmt.Errorf("bench: manifest schema %d, this binary speaks %d", m.Schema, Schema)
	}
	return &m, nil
}

// ReadFile reads a manifest from path.
func ReadFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}
