package bench

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sample() *Manifest {
	m := NewManifest("fig4", 42, 512)
	w := Workload{Name: "tpch-6", Planner: "optimal", PlanLines: []int{1, 2, 3}}
	w.Add("activepy.seconds", 0.010, "s", LowerIsBetter)
	w.Add("speedup", 1.40, "x", HigherIsBetter)
	w.Add("gap.percent", 2.0, "%", "")
	m.Workloads = append(m.Workloads, w)
	return m
}

func TestManifestRoundTrip(t *testing.T) {
	m := sample()
	m.CaptureRuntime()
	path := filepath.Join(t.TempDir(), "BENCH_fig4.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Runtime stats are wall-clock noise; everything else round-trips.
	got.Runtime, m.Runtime = nil, nil
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip mismatch:\n%+v\nvs\n%+v", got, m)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schema": 99, "experiment": "x"}`)); err == nil {
		t.Error("schema 99 accepted")
	}
	if _, err := Read(strings.NewReader(`{"experiment": "x"}`)); err == nil {
		t.Error("missing schema accepted")
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	old, cur := sample(), sample()
	cur.Workloads[0].Values[0].Value *= 1.05 // 5% slower, inside ±10%
	c, err := Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(c.Regressions()); n != 0 {
		t.Errorf("%d regressions inside tolerance:\n%s", n, c.Table())
	}
}

func TestCompareFlagsLowerIsBetterRegression(t *testing.T) {
	old, cur := sample(), sample()
	cur.Workloads[0].Values[0].Value *= 1.25 // 25% slower
	c, err := Compare(old, cur, CompareOptions{Tolerance: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Name != "activepy.seconds" {
		t.Fatalf("want exactly the duration regression, got %+v", regs)
	}
	if regs[0].Verdict != VerdictRegression {
		t.Errorf("verdict %q", regs[0].Verdict)
	}
}

func TestCompareFlagsHigherIsBetterRegression(t *testing.T) {
	old, cur := sample(), sample()
	cur.Workloads[0].Values[1].Value = 1.0 // speedup collapsed
	c, err := Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Name != "speedup" {
		t.Fatalf("want the speedup regression, got %+v", regs)
	}
}

func TestCompareImprovementAndInfoNeverGate(t *testing.T) {
	old, cur := sample(), sample()
	cur.Workloads[0].Values[0].Value *= 0.5 // 2x faster
	cur.Workloads[0].Values[2].Value = 99   // informational swing
	c, err := Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regressions()) != 0 {
		t.Errorf("improvement/info gated:\n%s", c.Table())
	}
	verdicts := map[string]string{}
	for _, d := range c.Deltas {
		verdicts[d.Name] = d.Verdict
	}
	if verdicts["activepy.seconds"] != VerdictImprovement {
		t.Errorf("faster run verdict %q", verdicts["activepy.seconds"])
	}
	if verdicts["gap.percent"] != VerdictInfo {
		t.Errorf("informational verdict %q", verdicts["gap.percent"])
	}
}

func TestCompareMissingTrackedValueGates(t *testing.T) {
	old, cur := sample(), sample()
	cur.Workloads[0].Values = cur.Workloads[0].Values[1:] // drop the duration
	c, err := Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Verdict != VerdictMissing {
		t.Fatalf("silently dropped benchmark not flagged: %+v", regs)
	}

	// A whole workload vanishing gates too.
	cur2 := sample()
	cur2.Workloads = nil
	c2, err := Compare(old, cur2, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Regressions()) != 2 { // both tracked values of tpch-6
		t.Errorf("missing workload: %d gated deltas, want 2:\n%s", len(c2.Regressions()), c2.Table())
	}
}

func TestCompareNewValueIsInfo(t *testing.T) {
	old, cur := sample(), sample()
	cur.Workloads[0].Add("fresh.metric", 1, "", LowerIsBetter)
	c, err := Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regressions()) != 0 {
		t.Error("new benchmark treated as regression")
	}
	found := false
	for _, d := range c.Deltas {
		if d.Name == "fresh.metric" && d.Verdict == VerdictInfo && math.IsNaN(d.Old) {
			found = true
		}
	}
	if !found {
		t.Error("new benchmark not surfaced as info row")
	}
}

func TestCompareRejectsMismatchedRuns(t *testing.T) {
	old, cur := sample(), sample()
	cur.Experiment = "fig5"
	if _, err := Compare(old, cur, CompareOptions{}); err == nil {
		t.Error("cross-experiment compare accepted")
	}
	cur2 := sample()
	cur2.ScaleDiv = 1024
	if _, err := Compare(old, cur2, CompareOptions{}); err == nil {
		t.Error("cross-scale compare accepted")
	}
}

func TestComparisonTableRenders(t *testing.T) {
	old, cur := sample(), sample()
	c, err := Compare(old, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c.Table().Render(&buf)
	out := buf.String()
	for _, want := range []string{"tpch-6", "activepy.seconds", "+0.0%", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(c.Summary(), "0 regressions") {
		t.Errorf("summary: %s", c.Summary())
	}
}
