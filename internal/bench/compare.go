package bench

import (
	"fmt"
	"math"

	"activego/internal/report"
)

// Verdicts of one compared value.
const (
	VerdictOK          = "ok"
	VerdictImprovement = "improvement"
	VerdictRegression  = "regression"
	VerdictInfo        = "info"    // untracked (no direction): never gated
	VerdictMissing     = "missing" // tracked value absent on one side
)

// DefaultTolerance is the relative change a tracked value may move in
// the worse direction before Compare flags a regression.
const DefaultTolerance = 0.10

// CompareOptions tunes the gate.
type CompareOptions struct {
	// Tolerance is the allowed fractional worsening per tracked value;
	// zero means DefaultTolerance. (0.10 = new may be up to 10% worse.)
	Tolerance float64
}

func (o CompareOptions) tolerance() float64 {
	if o.Tolerance > 0 {
		return o.Tolerance
	}
	return DefaultTolerance
}

// Delta is one (workload, value) pair diffed across two manifests.
type Delta struct {
	Workload string
	Name     string
	Unit     string
	Better   string
	Old, New float64
	// Change is (new-old)/old; NaN when old == 0 and new != 0.
	Change  float64
	Verdict string
}

// Comparison is the full diff of two manifests.
type Comparison struct {
	Old, New  *Manifest
	Tolerance float64
	Deltas    []Delta
}

// Regressions returns the deltas whose verdict is regression or a
// tracked-value mismatch (missing) — everything that should fail a gate.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Verdict == VerdictRegression || d.Verdict == VerdictMissing {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs new against old. Workloads and values match by name;
// a tracked value present on only one side is a VerdictMissing delta
// (the gate must notice a benchmark silently disappearing). Experiments
// must match — comparing fig4 against fig5 is a usage error.
func Compare(old, new *Manifest, opts CompareOptions) (*Comparison, error) {
	if old.Experiment != new.Experiment {
		return nil, fmt.Errorf("bench: comparing experiment %q against %q", new.Experiment, old.Experiment)
	}
	if old.Seed != new.Seed || old.ScaleDiv != new.ScaleDiv {
		return nil, fmt.Errorf(
			"bench: run parameters differ (old seed=%d scalediv=%d, new seed=%d scalediv=%d); numbers are not comparable",
			old.Seed, old.ScaleDiv, new.Seed, new.ScaleDiv)
	}
	c := &Comparison{Old: old, New: new, Tolerance: opts.tolerance()}
	for _, ow := range old.Workloads {
		nw := new.Workload(ow.Name)
		if nw == nil {
			for _, ov := range ow.Values {
				if ov.Better != "" {
					c.Deltas = append(c.Deltas, Delta{
						Workload: ow.Name, Name: ov.Name, Unit: ov.Unit, Better: ov.Better,
						Old: ov.Value, New: math.NaN(), Change: math.NaN(), Verdict: VerdictMissing,
					})
				}
			}
			continue
		}
		for _, ov := range ow.Values {
			d := Delta{Workload: ow.Name, Name: ov.Name, Unit: ov.Unit, Better: ov.Better, Old: ov.Value}
			nv, ok := findValue(nw.Values, ov.Name)
			if !ok {
				if ov.Better == "" {
					continue // informational value dropped: fine
				}
				d.New, d.Change, d.Verdict = math.NaN(), math.NaN(), VerdictMissing
				c.Deltas = append(c.Deltas, d)
				continue
			}
			d.New = nv.Value
			d.Change = change(ov.Value, nv.Value)
			d.Verdict = verdict(ov, nv.Value, c.Tolerance)
			c.Deltas = append(c.Deltas, d)
		}
	}
	// Tracked values that exist only in new are surfaced as info rows —
	// a fresh benchmark is not a regression, but the reader should see it.
	for _, nw := range new.Workloads {
		ow := old.Workload(nw.Name)
		for _, nv := range nw.Values {
			if ow != nil {
				if _, ok := findValue(ow.Values, nv.Name); ok {
					continue
				}
			}
			c.Deltas = append(c.Deltas, Delta{
				Workload: nw.Name, Name: nv.Name, Unit: nv.Unit, Better: nv.Better,
				Old: math.NaN(), New: nv.Value, Change: math.NaN(), Verdict: VerdictInfo,
			})
		}
	}
	return c, nil
}

func findValue(vs []Value, name string) (Value, bool) {
	for _, v := range vs {
		if v.Name == name {
			return v, true
		}
	}
	return Value{}, false
}

func change(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.NaN()
	}
	return (new - old) / old
}

func verdict(old Value, new, tol float64) string {
	if old.Better == "" {
		return VerdictInfo
	}
	ch := change(old.Value, new)
	if math.IsNaN(ch) {
		return VerdictRegression // 0 -> nonzero on a tracked value: flag it
	}
	worse := ch
	if old.Better == HigherIsBetter {
		worse = -ch
	}
	switch {
	case worse > tol:
		return VerdictRegression
	case worse < -tol:
		return VerdictImprovement
	default:
		return VerdictOK
	}
}

// Table renders the comparison benchstat-style: one row per compared
// value with old, new, delta, and verdict columns.
func (c *Comparison) Table() *report.Table {
	tbl := report.NewTable(
		fmt.Sprintf("Benchmark comparison: %s (tolerance ±%.0f%%)", c.New.Experiment, c.Tolerance*100),
		"workload", "metric", "old", "new", "delta", "verdict")
	for _, d := range c.Deltas {
		tbl.AddRow(d.Workload, d.Name, fmtVal(d.Old, d.Unit), fmtVal(d.New, d.Unit), fmtChange(d.Change), d.Verdict)
	}
	return tbl
}

// Summary is a one-line outcome for CLI epilogues.
func (c *Comparison) Summary() string {
	reg := len(c.Regressions())
	imp := 0
	for _, d := range c.Deltas {
		if d.Verdict == VerdictImprovement {
			imp++
		}
	}
	return fmt.Sprintf("%d values compared: %d regressions, %d improvements (tolerance ±%.0f%%)",
		len(c.Deltas), reg, imp, c.Tolerance*100)
}

func fmtVal(v float64, unit string) string {
	if math.IsNaN(v) {
		return "-"
	}
	s := fmt.Sprintf("%.6g", v)
	if unit != "" {
		s += " " + unit
	}
	return s
}

func fmtChange(ch float64) string {
	if math.IsNaN(ch) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", ch*100)
}
