module activego

go 1.22
