// TPC-H example: run Q6 — the paper's most ISP-friendly query — through
// ActivePy and through every comparison configuration, printing the full
// story: plan, per-configuration latency, and what contention does to a
// static offload.
//
//	go run ./examples/tpch
package main

import (
	"fmt"
	"log"

	"activego/internal/codegen"
	"activego/internal/experiments"
	"activego/internal/platform"
	"activego/internal/report"
	"activego/internal/workloads"
)

func main() {
	spec, _ := workloads.ByName("tpch-6")
	params := workloads.DefaultParams()
	wb, err := experiments.Prepare(spec, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-H Q6 over a %.1f MB lineitem (stand-in for the paper's 6.9 GB)\n\n",
		float64(wb.Inst.Registry.TotalBytes())/(1<<20))
	fmt.Println("program (no ISP hints anywhere):")
	fmt.Print(wb.Inst.Source)
	fmt.Printf("\nActivePy's plan: %s\n\n", wb.Plan.Describe())

	tbl := report.NewTable("configurations", "configuration", "latency", "vs baseline")
	add := func(name string, dur float64) {
		tbl.AddRow(name, fmt.Sprintf("%.3f ms", dur*1e3), fmt.Sprintf("%.3fx", wb.Baseline/dur))
	}
	add("C baseline (host only)", wb.Baseline)
	add("programmer-directed static ISP", wb.StaticTime)

	auto, err := wb.RunActivePy(true, nil)
	if err != nil {
		log.Fatal(err)
	}
	add("ActivePy (automatic)", auto.Duration)

	interp, err := wb.RunBackend(codegen.Interpreted)
	if err != nil {
		log.Fatal(err)
	}
	add("plain interpreter, no ISP", interp.Duration)
	fmt.Print(tbl.String())

	// A static offload cannot adapt: drop CSE availability and rerun it.
	fmt.Println("\nstatic ISP under CSE contention (the Figure 2 effect):")
	for _, avail := range []float64{1.0, 0.6, 0.3, 0.1} {
		a := avail
		run, err := wb.RunStatic(func(p *platform.Platform) { p.Dev.SetAvailability(a) })
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  CSE %3.0f%% available: %8.3f ms (%.2fx vs baseline)\n",
			a*100, run.Duration*1e3, wb.Baseline/run.Duration)
	}
}
