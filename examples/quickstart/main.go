// Quickstart: write a plain mini-language program with zero ISP hints,
// hand it to the ActivePy runtime, and watch it decide what the
// computational storage device should run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"activego/internal/baseline"
	"activego/internal/codegen"
	"activego/internal/core"
	"activego/internal/inputs"
	"activego/internal/lang/value"
	"activego/internal/platform"
	"activego/internal/profile"
)

// A selective scan: load sensor readings, keep the anomalous ones,
// summarize. The raw data is large, the result tiny — the shape that
// in-storage processing rewards. The program itself says nothing about
// any CSD.
const program = `readings = load("sensors")
spikes = vselect(readings, vgt(readings, 4.5))
count = vlen(spikes)
energy = vsum(vmul(spikes, spikes))
mean_spike = vsum(spikes) / count
`

func main() {
	// Synthesize 16 MB of readings; ~0.4% exceed the spike threshold.
	rng := rand.New(rand.NewSource(7))
	data := make([]float64, 2<<20)
	for i := range data {
		data[i] = rng.NormFloat64() + 1.8
	}
	reg := inputs.NewRegistry()
	reg.Add("sensors", value.NewVec(data), inputs.ModeRows)

	// One simulated platform: host + 5 GB/s-class link + CSD (§IV-A).
	p := platform.Default()
	rt := core.New(p)
	rt.SampleScales = profile.ScaledScales
	rt.PreloadInputs(reg)

	// The dataset is a megabyte-scale stand-in for a multi-GB one, so the
	// fixed sampling/compile overheads scale down by the same factor (the
	// paper's ~0.1 s against 11-73 s applications).
	cfg := core.DefaultConfig()
	cfg.OverheadScale = 1.0 / 4096

	out, err := rt.Run(program, reg, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("program:")
	fmt.Print(program)
	fmt.Printf("\n%s\n", out.Plan.Describe())
	fmt.Printf("executed in %.3f ms (%d line executions on the CSD, %d on the host)\n",
		out.Exec.Duration*1e3, out.Exec.RecordsOnCSD, out.Exec.RecordsOnHost)

	count, _ := out.Env.Get("count")
	mean, _ := out.Env.Get("mean_spike")
	fmt.Printf("results: %v spikes, mean magnitude %v\n", count, mean)

	// How does that compare to not using the CSD at all?
	base, err := baseline.RunHostOnly(platform.Default(), out.Trace, codegen.C)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no-ISP C baseline: %.3f ms -> ActivePy speedup %.2fx, with zero programmer hints\n",
		base.Duration*1e3, base.Duration/out.Exec.Duration)
}
