// Autodetect example: a look inside the sampling phase (§III-A). The
// runtime runs a custom program on four scaled-down inputs, fits each
// line's cost against the five candidate complexity curves, and prices
// both sides of Equation 1 — all visible here line by line.
//
//	go run ./examples/autodetect
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"activego/internal/core"
	"activego/internal/inputs"
	"activego/internal/lang/value"
	"activego/internal/platform"
	"activego/internal/profile"
	"activego/internal/report"
)

// Three lines with genuinely different complexity classes: a linear
// filter, an O(n²)-ish pairwise kernel on the survivors, and a constant
// summary. The sampler has to tell them apart from measurements alone.
const program = `m = load("matrix")
g = csr_from_dense(m, 0.000001)
s = spmv(g, full(ncols(g), 1.0))
total = vsum(s)
peak = vmax(s)
`

func main() {
	// A 1024x1024 dense matrix whose sparsity decays away from the
	// top-left corner — the pattern that fools prefix sampling (§V).
	rng := rand.New(rand.NewSource(3))
	n := 1024
	m := value.NewMat(n, n)
	for i := 0; i < n; i++ {
		pi := 1 - 0.9*float64(i)/float64(n)
		for j := 0; j < n; j++ {
			pj := 1 - 0.9*float64(j)/float64(n)
			if rng.Float64() < 0.12*pi*pj {
				m.Set(i, j, rng.Float64())
			}
		}
	}
	reg := inputs.NewRegistry()
	reg.Add("matrix", m, inputs.ModeSquare)

	rt := core.New(platform.Default())
	rt.SampleScales = profile.ScaledScales
	rt.PreloadInputs(reg)

	prog, rep, planRes, err := rt.Analyze(program, reg)
	if err != nil {
		log.Fatal(err)
	}
	_ = prog
	fmt.Println("program:")
	fmt.Print(program)

	fmt.Printf("\nsampling phase: %d scaled runs at factors %v\n", len(rt.SampleScales), rt.SampleScales)
	tbl := report.NewTable("per-line curve fits and full-scale predictions",
		"line", "source", "work curve", "out-bytes curve", "pred CT_host", "pred CT_csd", "pred D_out")
	srcLines := strings.Split(program, "\n")
	byLine := planRes.ByLine()
	for _, lp := range rep.Lines {
		pred := lp.Predict(1)
		est := byLine[lp.Line]
		src := ""
		if lp.Line-1 < len(srcLines) {
			src = strings.TrimSpace(srcLines[lp.Line-1])
		}
		if len(src) > 34 {
			src = src[:31] + "..."
		}
		tbl.AddRow(fmt.Sprintf("%d", lp.Line), src,
			lp.Models[0].Curve.String(), lp.Models[5].Curve.String(),
			fmt.Sprintf("%.4f ms", est.CTHost*1e3),
			fmt.Sprintf("%.4f ms", est.CTDev*1e3),
			fmt.Sprintf("%.0f B", pred.OutBytes))
	}
	fmt.Print(tbl.String())
	fmt.Printf("\n%s\n", planRes.Describe())

	fmt.Println("\nnote the CSR line: its predicted output volume exceeds what the full run")
	fmt.Println("produces, because the sampled prefix of the matrix is denser than the rest —")
	fmt.Println("the same conservative over-estimate the paper reports (up to 2.41x, §V).")
}
