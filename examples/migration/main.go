// Migration example: a co-tenant grabs 90% of the CSE mid-run, and the
// ActivePy monitor moves the offloaded task back to the host (§III-D).
// The same scenario runs with migration disabled for contrast — the
// paper's Figure 5 in miniature.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"activego/internal/experiments"
	"activego/internal/platform"
	"activego/internal/workloads"
)

func main() {
	spec, _ := workloads.ByName("blackscholes")
	params := workloads.DefaultParams()
	wb, err := experiments.Prepare(spec, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blackscholes, %.1f MB of options, plan offloads lines %v\n\n",
		float64(wb.Inst.Registry.TotalBytes())/(1<<20), wb.Plan.Partition.Lines())

	// Uncontended reference run; find when the offloaded work hits 50%.
	ref, err := wb.RunActivePy(true, nil)
	if err != nil {
		log.Fatal(err)
	}
	t50 := ref.Start
	for _, pr := range ref.CSDProgress {
		if pr.Frac >= 0.5 {
			t50 = pr.Time
			break
		}
	}
	fmt.Printf("uncontended ActivePy: %.3f ms (baseline %.3f ms, %.2fx)\n",
		ref.Duration*1e3, wb.Baseline*1e3, wb.Baseline/ref.Duration)
	fmt.Printf("co-tenant arrives at t=%.3f ms (offload ~50%% done), leaving 10%% of the CSE\n\n", t50*1e3)

	stress := func(p *platform.Platform) { p.Dev.ScheduleStress(t50, 0.1, 0) }

	with, err := wb.RunActivePy(true, stress)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with migration:    %.3f ms (%.2fx vs baseline)", with.Duration*1e3, wb.Baseline/with.Duration)
	if with.Migrated {
		fmt.Printf("  <- monitor migrated the task to the host at t=%.3f ms\n", with.MigratedAt*1e3)
	} else {
		fmt.Println("  (monitor chose to stay)")
	}

	without, err := wb.RunActivePy(false, stress)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without migration: %.3f ms (%.2fx vs baseline)  <- static frameworks are stuck here\n",
		without.Duration*1e3, wb.Baseline/without.Duration)
	fmt.Printf("\nmigration advantage: %.2fx\n", without.Duration/with.Duration)
}
