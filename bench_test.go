// Benchmarks that regenerate every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark
// iteration performs one full regeneration of its experiment at 1/1024 of
// Table I's input sizes; the headline numbers are attached as custom
// metrics so `go test -bench=. -benchmem` doubles as a results report.
package activego_test

import (
	"testing"

	"activego/internal/codegen"
	"activego/internal/exec"
	"activego/internal/experiments"
	"activego/internal/inputs"
	"activego/internal/lang/ast"
	"activego/internal/lang/interp"
	"activego/internal/lang/parser"
	"activego/internal/lang/value"
	"activego/internal/par"
	"activego/internal/plan"
	"activego/internal/platform"
	"activego/internal/profile"
	"activego/internal/sim"
	"activego/internal/workloads"
)

func benchParams() workloads.Params {
	return workloads.Params{ScaleDiv: 1024, Seed: 42}
}

// BenchmarkTable1Catalog regenerates Table I (applications, input sizes,
// SESE code regions).
func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table1(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatalf("want 9 applications, got %d", len(rows))
		}
	}
}

// BenchmarkFig2AvailabilitySweep regenerates Figure 2: static C ISP under
// decreasing CSE availability. Metrics: speedup at 100% and at 10% for
// TPC-H-6, and the availability below which it loses.
func BenchmarkFig2AvailabilitySweep(b *testing.B) {
	var res *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = experiments.Fig2(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SpeedupAt("tpch-6", 1.0), "speedup@100%")
	b.ReportMetric(res.SpeedupAt("tpch-6", 0.1), "speedup@10%")
	b.ReportMetric(res.Crossover("tpch-6")*100, "crossover-%avail")
}

// BenchmarkFig4Speedup regenerates Figure 4: ActivePy vs
// programmer-directed static ISP across the nine Table I applications.
// Paper: 1.33x vs 1.34x mean with identical offload sets.
func BenchmarkFig4Speedup(b *testing.B) {
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = experiments.Fig4(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanStatic, "mean-static-x")
	b.ReportMetric(res.MeanActivePy, "mean-activepy-x")
	b.ReportMetric(float64(res.Matches), "plans-matched")
}

// BenchmarkFig5Migration regenerates Figure 5: migration vs no migration
// under 50%/10% CSE availability. Paper: 2.82x advantage at 10%, ~8%
// slowdown with migration, 67% mean / 88% max loss without.
func BenchmarkFig5Migration(b *testing.B) {
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = experiments.Fig5(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	mean, max := res.LossWithoutMigration(0.1)
	b.ReportMetric(res.MigrationAdvantage(0.1), "advantage@10%")
	b.ReportMetric(mean*100, "loss-mean-%")
	b.ReportMetric(max*100, "loss-max-%")
	b.ReportMetric(res.MeanSlowdownWithMigration(0.1)*100, "slowdown-w/mig-%")
}

// BenchmarkPredictionAccuracy regenerates the §V prediction-accuracy
// study. Paper: 9% geomean error, CSR over-estimated up to 2.41x.
func BenchmarkPredictionAccuracy(b *testing.B) {
	var res *experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = experiments.Accuracy(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GeoMeanError*100, "geomean-err-%")
	b.ReportMetric(res.MaxCSROverestimate, "csr-over-x")
}

// BenchmarkRuntimeOptLadder regenerates the §V language-runtime ladder.
// Paper: interpreted +41%, Cython +20%, ActivePy-native ~+1%.
func BenchmarkRuntimeOptLadder(b *testing.B) {
	var res *experiments.RuntimeOptResult
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = experiments.RuntimeOpt(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanInterp*100, "interp-%")
	b.ReportMetric(res.MeanCython*100, "cython-%")
	b.ReportMetric(res.MeanNative*100, "native-%")
}

// BenchmarkAblationGranularity compares the paper's one-line offload
// granularity against a finer-grained splitting that alternates adjacent
// lines between host and CSD (§III-B's argument: arbitrary fine
// distribution drowns in D2H transfers).
func BenchmarkAblationGranularity(b *testing.B) {
	spec, _ := workloads.ByName("tpch-6")
	wb, err := experiments.Prepare(spec, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	lines := wb.Trace.Lines()
	alternating := codegen.NewPartition()
	for i, ln := range lines {
		if i%2 == 0 {
			alternating.CSDLines[ln] = true
		}
	}
	var whole, fine float64
	for i := 0; i < b.N; i++ {
		w, err := wb.RunStatic(nil)
		if err != nil {
			b.Fatal(err)
		}
		whole = w.Duration
		f, err := exec.Run(platform.Default(), wb.Trace, exec.Options{
			Backend: codegen.C, Partition: alternating, UseCallQueue: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		fine = f.Duration
	}
	b.ReportMetric(wb.Baseline/whole, "line-granular-x")
	b.ReportMetric(wb.Baseline/fine, "alternating-x")
}

// BenchmarkAblationPlanner compares the planners: the exact Equation 1
// argmin the runtime uses, the paper's greedy Algorithm 1 with chain
// commits, and the literal pseudocode. Metrics are measured (not
// projected) speedups of each planner's partition.
func BenchmarkAblationPlanner(b *testing.B) {
	spec, _ := workloads.ByName("tpch-6")
	wb, err := experiments.Prepare(spec, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	measure := func(part codegen.Partition) float64 {
		r, err := exec.Run(platform.Default(), wb.Trace, exec.Options{
			Backend: codegen.Native, Partition: part, UseCallQueue: true,
			OverheadScale: wb.Params.OverheadScale(),
		})
		if err != nil {
			b.Fatal(err)
		}
		return wb.Baseline / r.Duration
	}
	var optimalX, greedyX, literalX float64
	for i := 0; i < b.N; i++ {
		optimal := plan.Optimal(wb.Plan.Estimates, plan.Constraints{}, wb.Machine)
		greedy := plan.Algorithm1(wb.Plan.Estimates, plan.Constraints{}, wb.Machine)
		literal := plan.Algorithm1Literal(wb.Plan.Estimates, plan.Constraints{}, wb.Machine)
		optimalX = measure(optimal.Partition)
		greedyX = measure(greedy.Partition)
		literalX = measure(literal.Partition)
	}
	b.ReportMetric(optimalX, "optimal-x")
	b.ReportMetric(greedyX, "greedy-x")
	b.ReportMetric(literalX, "literal-x")
}

// BenchmarkAblationSampling varies the number of sampling scale factors
// (the paper uses four) and reports the mean output-volume prediction
// error under two-, four-, and six-point sampling.
func BenchmarkAblationSampling(b *testing.B) {
	spec, _ := workloads.ByName("tpch-6")
	wb, err := experiments.Prepare(spec, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	actual := map[int]float64{}
	for i := range wb.Trace.Records {
		rec := &wb.Trace.Records[i]
		actual[rec.Line] += float64(rec.OutBytes())
	}
	prog := wb.Plan // parsed program lives in the workbench's analysis
	_ = prog
	parsed, err := parseSource(wb.Inst.Source)
	if err != nil {
		b.Fatal(err)
	}
	scaleSets := map[string][]float64{
		"2pt": {1.0 / 64, 1.0 / 8},
		"4pt": profile.ScaledScales,
		"6pt": {1.0 / 64, 1.0 / 48, 1.0 / 32, 1.0 / 24, 1.0 / 16, 1.0 / 8},
	}
	errs := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for name, scales := range scaleSets {
			rep, err := profile.RunScales(parsed, wb.Inst.Registry, scales)
			if err != nil {
				b.Fatal(err)
			}
			var sum float64
			var n int
			for _, pred := range rep.Predictions() {
				act := actual[pred.Line]
				if act < 4096 {
					continue
				}
				e := pred.OutBytes/act - 1
				if e < 0 {
					e = -e
				}
				sum += e
				n++
			}
			errs[name] = sum / float64(n)
		}
	}
	b.ReportMetric(errs["2pt"]*100, "err-2pt-%")
	b.ReportMetric(errs["4pt"]*100, "err-4pt-%")
	b.ReportMetric(errs["6pt"]*100, "err-6pt-%")
}

// parseSource is a tiny indirection so the benchmark file reads cleanly.
func parseSource(src string) (*ast.Program, error) { return parser.Parse(src) }

// BenchmarkAblationStorageTenant extends Figure 5's stressor: a
// storage-bound co-tenant that contends for flash channels as well as the
// CSE (the paper's "resource contention coming from the storage
// management workloads", §II-B3). Metrics: tpch-6 speedup under a
// CSE-only tenant vs a CSE+flash tenant at 50% availability.
func BenchmarkAblationStorageTenant(b *testing.B) {
	spec, _ := workloads.ByName("tpch-6")
	wb, err := experiments.Prepare(spec, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	var cseOnly, cseFlash float64
	for i := 0; i < b.N; i++ {
		r1, err := wb.RunStatic(func(p *platform.Platform) {
			p.Dev.SetAvailability(0.5)
		})
		if err != nil {
			b.Fatal(err)
		}
		cseOnly = wb.Baseline / r1.Duration
		r2, err := wb.RunStatic(func(p *platform.Platform) {
			p.Dev.SetAvailability(0.5)
			p.Dev.Array.SetAvailability(0.5)
		})
		if err != nil {
			b.Fatal(err)
		}
		cseFlash = wb.Baseline / r2.Duration
	}
	b.ReportMetric(cseOnly, "cse-tenant-x")
	b.ReportMetric(cseFlash, "cse+flash-tenant-x")
}

// BenchmarkAblationPreempt measures §III-D case 1: a high-priority tenant
// demands the device mid-run; ActivePy vacates at the next line boundary.
// Metrics: speedup with the demand honored vs a static program that
// cannot vacate (and so runs to completion on a device it should have
// surrendered, modeled as 10% availability from the demand onward).
func BenchmarkAblationPreempt(b *testing.B) {
	spec, _ := workloads.ByName("blackscholes")
	wb, err := experiments.Prepare(spec, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	ref, err := wb.RunActivePy(false, nil)
	if err != nil {
		b.Fatal(err)
	}
	t50 := ref.Start + (ref.End-ref.Start)/2
	var vacate, squat float64
	for i := 0; i < b.N; i++ {
		rv, err := wb.RunActivePy(true, func(p *platform.Platform) {
			p.Dev.DemandAt(t50)
			p.Dev.ScheduleStress(t50, 0.1, 0)
		})
		if err != nil {
			b.Fatal(err)
		}
		vacate = wb.Baseline / rv.Duration
		rs, err := wb.RunActivePy(false, func(p *platform.Platform) {
			p.Dev.ScheduleStress(t50, 0.1, 0)
		})
		if err != nil {
			b.Fatal(err)
		}
		squat = wb.Baseline / rs.Duration
	}
	b.ReportMetric(vacate, "vacate-x")
	b.ReportMetric(squat, "squat-x")
}

// BenchmarkSimEventThroughput measures the raw event kernel: how many
// scheduled-and-fired events per second the simulator sustains.
func BenchmarkSimEventThroughput(b *testing.B) {
	s := simNew()
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			s.After(1e-9, fire)
		}
	}
	b.ResetTimer()
	s.After(1e-9, fire)
	s.Run()
}

// BenchmarkInterpreterScan measures the mini-language interpreter on a
// 1M-element scan program (real computation plus trace recording).
func BenchmarkInterpreterScan(b *testing.B) {
	reg := inputsNewRegistry()
	data := make([]float64, 1<<20)
	reg.Add("v", valueNewVec(data), inputsModeRows)
	prog, err := parser.Parse("v = load(\"v\")\nw = vmul(v, 2.0)\ns = vsum(w)\n")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := interpRun(prog, reg.Context(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSamplingPhase measures the §III-A sampling phase — four
// scaled interpreter runs plus curve fitting — serial and fanned out
// over the scale factors on a pool. Output is bit-identical either way
// (TestParallelInvariance); only wall clock moves.
func BenchmarkSamplingPhase(b *testing.B) {
	spec, _ := workloads.ByName("tpch-6")
	inst := spec.Build(benchParams())
	prog, err := parser.Parse(inst.Source)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		pool *par.Pool
	}{{"j1", nil}, {"jN", par.New(0)}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := profile.RunScalesPool(prog, inst.Registry, profile.ScaledScales, nil, bc.pool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimal16Lines measures the exact planner at its enumeration
// ceiling: 16 offloadable lines = 65536 candidate placements, scanned
// serially and sharded across a pool with the lowest-mask tie-break.
func BenchmarkOptimal16Lines(b *testing.B) {
	spec, _ := workloads.ByName("tpch-6")
	wb, err := experiments.Prepare(spec, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	estimates := make([]plan.LineEstimate, plan.MaxOptimalLines)
	for i := range estimates {
		ct := 1e-4 * float64(1+i%5)
		estimates[i] = plan.LineEstimate{
			Line: i + 1, Execs: 1,
			CTHost: ct, CTDev: wb.Machine.C * ct,
			SHost: 2e-4, SDev: 1e-4,
			DIn: float64(1+i) * 1e5, DOut: float64(16-i) * 1e4,
		}
	}
	for _, bc := range []struct {
		name string
		pool *par.Pool
	}{{"j1", nil}, {"jN", par.New(0)}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := plan.OptimalPool(estimates, plan.Constraints{}, wb.Machine, bc.pool)
				if res.Planner != plan.PlannerOptimal {
					b.Fatalf("planner %q", res.Planner)
				}
			}
		})
	}
}

// benchmarkBnB times the branch-and-bound planner on a fixture program
// past the old 16-line enumeration cliff, where the seed planner would
// have silently degraded to Algorithm 1. The search must stay exact
// (no node-budget fallback) on every iteration.
func benchmarkBnB(b *testing.B, lines int) {
	m := plan.MachineFromPlatform(platform.Default())
	estimates := experiments.PlannerFixture(lines)
	cons := plan.Constraints{HostOnly: map[int]string{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var stats plan.BnBStats
		res := plan.BnBBudget(estimates, cons, m, plan.DefaultBnBNodeBudget, &stats)
		if res.Planner != plan.PlannerBnB || stats.Fallback {
			b.Fatalf("planner %q fallback=%t", res.Planner, stats.Fallback)
		}
	}
}

// BenchmarkBnB24Lines: 1.5× the old cliff — two dependence chains, each
// solved exactly by its own bounded search.
func BenchmarkBnB24Lines(b *testing.B) { benchmarkBnB(b, 24) }

// BenchmarkBnB32Lines: double the old cliff (2^32 candidate placements
// under brute force; the bound and never-win cuts reduce the search to a
// few hundred nodes).
func BenchmarkBnB32Lines(b *testing.B) { benchmarkBnB(b, 32) }

// BenchmarkSimKernelScheduleFire measures the event kernel's hot loop:
// schedule a batch, drain it, repeat. With the typed heap and the event
// free list the steady state should run allocation-free — allocs/op is
// the headline metric.
func BenchmarkSimKernelScheduleFire(b *testing.B) {
	const batch = 64
	s := simNew()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			s.After(float64(j+1)*1e-9, fn)
		}
		s.Run()
	}
}

// BenchmarkBenchsuiteSweep measures the experiment sweep the way
// cmd/benchsuite runs it with -exp all: independent harnesses fanned out
// on one pool (which also threads into each harness's own workload
// fan-out), vs the same sweep serial. The jN/j1 ratio is the wall-clock
// win of the parallel layer.
func BenchmarkBenchsuiteSweep(b *testing.B) {
	sweep := []func(opts ...experiments.Option) error{
		func(opts ...experiments.Option) error {
			_, _, err := experiments.Fig2(benchParams(), opts...)
			return err
		},
		func(opts ...experiments.Option) error {
			_, _, err := experiments.Fig4(benchParams(), opts...)
			return err
		},
		func(opts ...experiments.Option) error {
			_, _, err := experiments.Accuracy(benchParams(), opts...)
			return err
		},
		func(opts ...experiments.Option) error {
			_, _, err := experiments.RuntimeOpt(benchParams(), opts...)
			return err
		},
	}
	for _, bc := range []struct {
		name string
		pool *par.Pool
	}{{"j1", nil}, {"jN", par.New(0)}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := par.Map(bc.pool, len(sweep), func(j int) (struct{}, error) {
					var opts []experiments.Option
					if bc.pool != nil {
						opts = append(opts, experiments.WithPool(bc.pool))
					}
					return struct{}{}, sweep[j](opts...)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Thin aliases keeping the benchmark file's imports tidy.
var (
	simNew            = sim.New
	inputsNewRegistry = inputs.NewRegistry
	valueNewVec       = value.NewVec
	interpRun         = interp.Run
)

const inputsModeRows = inputs.ModeRows
