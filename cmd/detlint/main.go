// Command detlint runs the framework-tier determinism linter
// (internal/detlint, passes DL001–DL005) over this repository's Go
// packages. It is the static half of the determinism contract: the
// runtime tests prove bit-identical replays after the fact, detlint
// rejects the code patterns that break them before anything runs.
//
// Usage:
//
//	detlint [-json] [packages...]
//
// Package patterns default to ./... resolved against the current
// directory. Exit status: 0 clean, 1 diagnostics reported, 2 load
// failure.
//
// Unlike most Go linters this driver is built on the standard library
// alone (go/types + `go list -export`), not golang.org/x/tools, so it
// works in hermetic builds with no module downloads; the trade-off is
// that it cannot be loaded via `go vet -vettool`.
package main

import (
	"flag"
	"fmt"
	"os"

	"activego/internal/detlint"
	"activego/internal/metrics"
	"activego/internal/trace"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := detlint.DefaultConfig()
	// The catalogue predicates are injected here rather than imported by
	// internal/detlint, so the linter has no dependency edge back into
	// the framework it lints.
	cfg.CataloguedName = map[string]func(string) bool{
		"metrics": metrics.Catalogued,
		"trace":   trace.Catalogued,
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	pkgs, err := detlint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags := detlint.Run(cfg, pkgs)
	if *jsonOut {
		if err := detlint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.Format())
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
