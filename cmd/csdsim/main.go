// Command csdsim exercises the simulated computational storage device
// directly: block reads/writes through the NVMe queue pair, CSD function
// calls, flash garbage collection, and the performance counters the
// ActivePy runtime consumes. Useful for inspecting the substrate without
// the language stack on top.
//
// Usage:
//
//	csdsim [-read-mb N] [-write-mb N] [-calls N] [-availability F]
//	       [-fault-rate F] [-fault-seed N] [-retry-timeout S]
//	       [-trace out.json] [-tracesummary] [-metrics out.json]
//	       [-pprof cpu.pb] [-memprofile mem.pb]
//	csdsim -chaos N [-chaos-seed S]  # N randomized device-level fault schedules
//	csdsim -serve [-tenants N] [-arrival P] [-qps Q] [-duration D]
//	csdsim -lint program.apy...      # static-analysis lint, no simulation
//	csdsim -explain -workload tpch-6 [-json] [-obswindow W]  # plan provenance, as activego explain
package main

import (
	"flag"
	"fmt"
	"os"

	"activego/internal/analysis"
	"activego/internal/chaos"
	"activego/internal/cliutil"
	"activego/internal/csd"
	"activego/internal/driver"
	"activego/internal/fault"
	"activego/internal/nvme"
	"activego/internal/platform"
	"activego/internal/sim"
)

func main() {
	lint := flag.Bool("lint", false, "lint mini-language source files instead of simulating (args are .apy paths)")
	lintJSON := flag.Bool("json", false, "with -lint: emit diagnostics as a JSON array")
	lintWerror := flag.Bool("werror", false, "with -lint: treat warnings as errors")
	readMB := flag.Int64("read-mb", 64, "stream this many MB from the device to the host")
	writeMB := flag.Int64("write-mb", 16, "stream this many MB from the host to the device")
	calls := flag.Int("calls", 8, "CSD function invocations through the call queue")
	avail := flag.Float64("availability", 1.0, "CSE availability fraction")
	faultRate := flag.Float64("fault-rate", 0, "per-roll probability of NVMe completion drops and transient flash errors")
	faultSeed := flag.Uint64("fault-seed", 1, "fault plan seed (same seed + same flags = identical run)")
	retryTimeout := flag.Float64("retry-timeout", 0.05, "host completion timer, seconds (with -fault-rate > 0)")
	chaosN := flag.Int("chaos", 0, "run N randomized device-level fault schedules instead of the benchmark")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the -chaos schedule sweep")
	serve := flag.Bool("serve", false, "drive a multi-tenant serving run of synthetic device requests (DESIGN.md §14) instead of the benchmark")
	explain := flag.Bool("explain", false, "render a workload's plan provenance (per-line Eq. 1 terms and placement verdicts) instead of the benchmark")
	workload := flag.String("workload", "", "with -explain: workload name (see activego -list)")
	scaleDiv := flag.Int64("scalediv", 512, "with -explain: divide Table I input sizes by this factor")
	seed := flag.Int64("seed", 42, "with -explain: generator seed")
	obs := cliutil.Register(flag.CommandLine)
	srv := cliutil.RegisterServing(flag.CommandLine)
	flag.Parse()

	if *lint {
		os.Exit(runLint(flag.Args(), *lintJSON, *lintWerror))
	}
	if *explain {
		// -obswindow doubles as the "also run and cross-link drift" knob:
		// a window implies a windowed execution to fill it.
		err := cliutil.Explain(os.Stdout, cliutil.ExplainOptions{
			Workload: *workload, ScaleDiv: *scaleDiv, Seed: *seed,
			JSON: *lintJSON, Run: obs.ObsWindow > 0, Window: obs.ObsWindow,
			Planner: obs.Planner,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "csdsim -explain:", err)
			os.Exit(1)
		}
		return
	}
	if *chaosN > 0 {
		os.Exit(runDeviceChaos(*chaosN, *chaosSeed, *retryTimeout))
	}
	if *serve {
		os.Exit(runDeviceServe(obs, srv, *faultSeed, *faultRate, *retryTimeout))
	}

	if err := obs.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "csdsim:", err)
		os.Exit(1)
	}
	p := platform.Default()
	if *avail < 1 {
		p.Dev.SetAvailability(*avail)
	}
	if rec := obs.Recorder(); rec != nil {
		p.SetRecorder(rec)
	}
	if *faultRate > 0 {
		p.InstallFaults(fault.NewPlan(*faultSeed,
			fault.Rule{Point: fault.NVMeCompletionDrop, Rate: *faultRate},
			fault.Rule{Point: fault.NVMeCommandLoss, Rate: *faultRate / 2},
			fault.Rule{Point: fault.FlashTransient, Rate: *faultRate},
		), nvme.RetryPolicy{Timeout: *retryTimeout, MaxAttempts: 4, Backoff: 1e-3})
	}
	g := p.Dev.Array.Geometry()
	fmt.Printf("CSD: %d CSE cores @%.2fe9 units/s, %.1f TB flash (%d ch x %d dies), array %.2f GB/s, link %.2f GB/s\n",
		p.Cfg.CSD.CSECores, p.Cfg.CSD.CSERate/1e9,
		float64(g.TotalBytes())/(1<<40), g.Channels, g.DiesPerChan,
		g.EffectiveReadBW()/1e9, p.Cfg.Inter.D2HBandwidth/1e9)

	obj := "bench-object"
	p.Dev.Store.Preload(obj, *readMB<<20)

	// Host-side streaming read through the queue pair.
	start := p.Sim.Now()
	var end sim.Time
	p.Host.ReadObject(p.Dev, obj, 0, *readMB<<20, func(c nvme.Completion) { end = c.Completed })
	p.Sim.Run()
	dur := end - start
	fmt.Printf("read  %4d MB: %8.3f ms  (%.2f GB/s effective)\n",
		*readMB, dur*1e3, float64(*readMB<<20)/dur/1e9)

	// Host-side write.
	start = p.Sim.Now()
	p.Host.WriteObject(p.Dev, obj, 0, *writeMB<<20, func(c nvme.Completion) { end = c.Completed })
	p.Sim.Run()
	dur = end - start
	fmt.Printf("write %4d MB: %8.3f ms  (%.2f GB/s effective)\n",
		*writeMB, dur*1e3, float64(*writeMB<<20)/dur/1e9)

	// Function calls through the call queue: each burns 1M work units on
	// the CSE, reporting service latency.
	const callWork = 1e6
	var totalLat float64
	done := 0
	start = p.Sim.Now()
	for i := 0; i < *calls; i++ {
		p.Host.Call(p.Dev, csd.Call(func(d *csd.Device, finish func(uint16, any)) {
			d.CSE.Submit(callWork, func(_, _ sim.Time) { finish(0, nil) })
		}), func(c nvme.Completion) {
			totalLat += c.Completed - c.Submitted
			done++
		})
	}
	p.Sim.Run()
	if done != *calls {
		fmt.Fprintf(os.Stderr, "csdsim: %d/%d calls completed\n", done, *calls)
		os.Exit(1)
	}
	fmt.Printf("calls %4d x %.0f units: mean latency %.3f us (wall %.3f ms)\n",
		*calls, callWork, totalLat/float64(*calls)*1e6, (p.Sim.Now()-start)*1e3)

	retired, rate := p.Dev.PerfCounters()
	reads, programs, erases, rb, wb := p.Dev.Array.Stats()
	gcRuns, moved, free := p.Dev.FTL.Stats()
	sub, comp := p.Dev.QP.Stats()
	fmt.Printf("perf counters: retired=%.3g units, effective rate=%.3g units/s/core\n", retired, rate)
	fmt.Printf("array: %d reads / %d programs / %d erases, %.1f MB read, %.1f MB programmed\n",
		reads, programs, erases, rb/(1<<20), wb/(1<<20))
	fmt.Printf("ftl: %d GC runs, %d pages moved, %d free blocks; nvme: %d submitted, %d completed\n",
		gcRuns, moved, free, sub, comp)
	if *faultRate > 0 {
		timeouts, retries, droppedC, lostC, aborted := p.Dev.QP.FaultStats()
		corrected, uecc := p.Dev.Array.FaultStats()
		fmt.Printf("faults: %d timeouts, %d retries, %d dropped CQEs, %d lost SQEs, %d aborted; flash %d corrected / %d uncorrectable\n",
			timeouts, retries, droppedC, lostC, aborted, corrected, uecc)
	}
	fmt.Printf("events fired: %d; simulated time: %.3f ms\n", p.Sim.EventsFired(), p.Sim.Now()*1e3)

	p.FoldMetrics(obs.Registry())
	if err := obs.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "csdsim:", err)
		os.Exit(1)
	}
}

// runDeviceChaos is the -chaos mode: N randomized seeded fault
// schedules (the same generator the chaos harness sweeps) driven
// against the bare device — a streaming read plus a batch of CSD calls
// per schedule, with the host retry machinery armed. The invariant is
// the device-level half of the chaos contract: every submitted command
// reaches a completion (OK or a real error status — never a hang) and
// the calendar drains. Exit 1 if any schedule violates it.
func runDeviceChaos(n int, seed uint64, retryTimeout float64) int {
	params := chaos.ScheduleParams{MaxRate: 0.7, Horizon: 10 * retryTimeout}
	retry := nvme.RetryPolicy{Timeout: retryTimeout, MaxAttempts: 3, Backoff: retryTimeout / 8}
	const readMB, nCalls = 2, 4
	violations, faulted := 0, 0
	for i := 0; i < n; i++ {
		rules := chaos.Schedule(seed, i, params)
		plan, err := fault.NewPlanChecked(fault.Mix64(seed^uint64(i)), rules...)
		if err != nil {
			fmt.Printf("schedule %3d: VIOLATION: generator emitted invalid rules: %v\n", i, err)
			violations++
			continue
		}
		p := platform.Default()
		p.InstallFaults(plan, retry)
		obj := "chaos-object"
		p.Dev.Store.Preload(obj, readMB<<20)
		want := 1 + nCalls
		completed, failedStatus := 0, 0
		note := func(c nvme.Completion) {
			completed++
			if c.Status != 0 {
				failedStatus++
			}
		}
		p.Host.ReadObject(p.Dev, obj, 0, readMB<<20, note)
		for k := 0; k < nCalls; k++ {
			p.Host.Call(p.Dev, csd.Call(func(d *csd.Device, finish func(uint16, any)) {
				d.CSE.Submit(1e6, func(_, _ sim.Time) { finish(0, nil) })
			}), note)
		}
		p.Sim.Run()
		resets, stalls := p.Dev.FaultStats()
		timeouts, _, _, _, _ := p.Dev.QP.FaultStats()
		switch {
		case completed != want:
			fmt.Printf("schedule %3d: VIOLATION: %d/%d commands completed (%d rules, dark until t=%.3fms)\n",
				i, completed, want, len(rules), p.Dev.ResetUntil()*1e3)
			violations++
		case p.Drained() != nil:
			fmt.Printf("schedule %3d: VIOLATION: %v\n", i, p.Drained())
			violations++
		default:
			if failedStatus > 0 || timeouts > 0 || resets > 0 || stalls > 0 {
				faulted++
			}
		}
	}
	fmt.Printf("chaos: %d device schedules, %d with observable faults, %d violations\n", n, faulted, violations)
	if violations > 0 {
		return 1
	}
	return 0
}

// runDeviceServe is the -serve mode: the multi-tenant serving driver
// pointed at the bare device, with driver.Synthetic request shapes
// instead of compiled workloads — a point-read-heavy mix plus a scan
// tenant, so admission control and fairness can be inspected on the
// substrate without the language stack on top. -fault-rate arms the
// same fault plan as the benchmark path underneath the traffic.
func runDeviceServe(obs *cliutil.Flags, srv *cliutil.ServingFlags,
	seed uint64, faultRate, retryTimeout float64) int {
	if err := obs.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "csdsim:", err)
		return 1
	}
	point := driver.Synthetic("point-read", 4, 5e5, 1<<18)
	scan := driver.Synthetic("scan", 8, 4e6, 1<<22)
	mixed, err := driver.NewMix(
		driver.MixEntry{Scenario: point, Weight: 4},
		driver.MixEntry{Scenario: scan, Weight: 1},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csdsim:", err)
		return 1
	}
	scans, err := driver.NewMix(driver.MixEntry{Scenario: scan, Weight: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "csdsim:", err)
		return 1
	}
	totalQPS := srv.QPS
	if totalQPS <= 0 {
		totalQPS = 400
	}
	duration := srv.Duration
	if duration <= 0 {
		duration = 48 / totalQPS
	}
	nTenants := srv.Tenants
	if nTenants <= 0 {
		nTenants = 2
	}
	proc := driver.Process(srv.Arrival)
	if proc == "" {
		proc = driver.Poisson
	}
	tenants := make([]driver.TenantConfig, nTenants)
	for i := range tenants {
		mix := mixed
		name := fmt.Sprintf("points%d", i)
		if i == nTenants-1 && nTenants > 1 {
			mix, name = scans, "scans"
		}
		tenants[i] = driver.TenantConfig{
			Name: name,
			Mix:  mix,
			Arrival: driver.Arrival{
				Process: proc, QPS: totalQPS / float64(nTenants),
				BurstFactor: 4, DutyCycle: 0.25, Period: duration / 4,
				Workers: 4, Think: 1 / totalQPS,
			},
		}
	}
	p := platform.Default()
	if rec := obs.Recorder(); rec != nil {
		p.SetRecorder(rec)
	}
	if faultRate > 0 {
		p.InstallFaults(fault.NewPlan(seed,
			fault.Rule{Point: fault.NVMeCompletionDrop, Rate: faultRate},
			fault.Rule{Point: fault.NVMeCommandLoss, Rate: faultRate / 2},
			fault.Rule{Point: fault.FlashTransient, Rate: faultRate},
		), nvme.RetryPolicy{Timeout: retryTimeout, MaxAttempts: 4, Backoff: 1e-3})
	}
	fmt.Printf("serving synthetic device traffic: %d tenants, %s arrivals, %.1f req/s offered over %.4fs\n",
		nTenants, proc, totalQPS, duration)
	res, err := driver.Run(p, driver.Config{
		Seed: seed, Duration: duration, Tenants: tenants,
		MaxInFlight: 4, Metrics: obs.Registry(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "csdsim:", err)
		return 1
	}
	fmt.Printf("%-10s %8s %8s %6s %6s %9s %9s %9s\n",
		"tenant", "offered", "done", "fail", "shed", "p50", "p95", "p99")
	for _, tr := range res.Tenants {
		fmt.Printf("%-10s %8d %8d %6d %6d %8.4fs %8.4fs %8.4fs\n",
			tr.Name, tr.Offered, tr.Completed, tr.Failed, tr.Shed, tr.P50, tr.P95, tr.P99)
	}
	fmt.Printf("makespan %.4fs, fairness %.3f (Jain over completed/offered)\n",
		res.Makespan, res.Fairness)
	retired, rate := p.Dev.PerfCounters()
	fmt.Printf("perf counters: retired=%.3g units, effective rate=%.3g units/s/core; events fired: %d\n",
		retired, rate, p.Sim.EventsFired())
	p.FoldMetrics(obs.Registry())
	if err := obs.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "csdsim:", err)
		return 1
	}
	return 0
}

// runLint is the -lint mode: same rule catalogue and output shapes as
// `activego vet` (plain lines, or a JSON array with -json), exposed on
// the substrate tool so device-side work can be checked without the
// language binary. Exit 0 clean/warnings (unless -werror), 1 on error
// diagnostics (or any diagnostic under -werror), 2 on usage/read/parse
// failures.
func runLint(paths []string, asJSON, werror bool) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: csdsim -lint [-json] [-werror] program.apy...")
		return 2
	}
	status := 0
	var all []analysis.FileDiagnostic
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csdsim:", err)
			return 2
		}
		diags, err := analysis.LintSource(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "csdsim: %s: %v\n", path, err)
			return 2
		}
		for _, d := range diags {
			if asJSON {
				all = append(all, analysis.FileDiagnostic{File: path, Diag: d})
			} else {
				fmt.Printf("%s [%s]\n", d.Format(path), d.Severity)
			}
		}
		if analysis.HasErrors(diags) || (werror && len(diags) > 0) {
			status = 1
		}
	}
	if asJSON {
		if err := analysis.WriteJSON(os.Stdout, all); err != nil {
			fmt.Fprintln(os.Stderr, "csdsim:", err)
			return 2
		}
	}
	return status
}
