// Command benchsuite regenerates the paper's evaluation: every table and
// figure of §IV/§V, printed as text tables with the same rows the paper
// plots, and optionally serialized as machine-readable benchmark
// manifests for CI's perf-regression gate.
//
// Usage:
//
//	benchsuite [-exp all|table1|fig2|fig4|fig5|accuracy|runtimeopt|robustness|utilization]
//	           [-scalediv N] [-seed S] [-outdir DIR] [-metrics out.json]
//	           [-httpmon addr] [-pprof cpu.pb] [-memprofile mem.pb]
//	           [-trace out.json] [-tracesummary]
//	benchsuite -compare old.json new.json [-tolerance 0.10]
//
// Inputs are synthesized at 1/scalediv of Table I's sizes (default 512,
// ~10-18 MB per application); the shape of every result — who wins, by
// what factor, where crossovers fall — is the reproduction target, not
// absolute times.
//
// With -outdir, every experiment additionally writes BENCH_<exp>.json: a
// schema-versioned manifest of its simulated results, planner choices,
// metrics snapshot, and Go runtime stats (see internal/bench and
// DESIGN.md §10). -compare diffs two manifests benchstat-style and exits
// nonzero when a tracked value worsened past the tolerance — the CI gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"activego/internal/bench"
	"activego/internal/cliutil"
	"activego/internal/experiments"
	"activego/internal/metrics"
	"activego/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, fig2, fig4, fig5, accuracy, runtimeopt, robustness, utilization")
	scaleDiv := flag.Int64("scalediv", 512, "divide Table I input sizes by this factor")
	seed := flag.Int64("seed", 42, "generator seed")
	outDir := flag.String("outdir", "", "write one BENCH_<exp>.json benchmark manifest per experiment into this directory")
	compare := flag.Bool("compare", false, "compare two manifests: benchsuite -compare old.json new.json; exit 1 on regression")
	tolerance := flag.Float64("tolerance", bench.DefaultTolerance, "with -compare: allowed fractional worsening per tracked value")
	obs := cliutil.Register(flag.CommandLine)
	obs.RegisterMonitor(flag.CommandLine)
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *tolerance))
	}
	if err := obs.Start(); err != nil {
		fail(err)
	}
	if addr, err := obs.StartMonitor(); err != nil {
		fail(err)
	} else if addr != "" {
		fmt.Printf("httpmon: serving expvar, pprof, and /metrics on http://%s\n", addr)
	}
	reg := obs.Registry()
	var mopts []experiments.Option
	if reg != nil {
		mopts = append(mopts, experiments.WithMetrics(reg))
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail(err)
		}
	}
	params := workloads.Params{ScaleDiv: *scaleDiv, Seed: *seed}
	runners := map[string]func() (*bench.Manifest, error){
		"table1": func() (*bench.Manifest, error) {
			rows, tbl, err := experiments.Table1(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Print(tbl.String())
			return experiments.BenchTable1(rows, params), nil
		},
		"fig2": func() (*bench.Manifest, error) {
			res, tbl, err := experiments.Fig2(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Print(tbl.String())
			return res.Bench(params), nil
		},
		"fig4": func() (*bench.Manifest, error) {
			res, tbl, err := experiments.Fig4(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Print(tbl.String())
			return res.Bench(params), nil
		},
		"fig5": func() (*bench.Manifest, error) {
			res, tbl, err := experiments.Fig5(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Print(tbl.String())
			return res.Bench(params), nil
		},
		"accuracy": func() (*bench.Manifest, error) {
			res, tbl, err := experiments.Accuracy(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Print(tbl.String())
			return res.Bench(params), nil
		},
		"runtimeopt": func() (*bench.Manifest, error) {
			res, tbl, err := experiments.RuntimeOpt(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Print(tbl.String())
			return res.Bench(params), nil
		},
		"robustness": func() (*bench.Manifest, error) {
			res, tbl, err := experiments.Robustness(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Print(tbl.String())
			return res.Bench(params), nil
		},
		"utilization": func() (*bench.Manifest, error) {
			u, tbl, err := experiments.Utilization(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Print(tbl.String())
			fmt.Println()
			fmt.Print(u.MigrationTimeline().String())
			// The trace flags apply to the study's own steady-state
			// recorder — the run worth a timeline — not a top-level one.
			if obs.Trace != "" {
				f, err := os.Create(obs.Trace)
				if err != nil {
					return nil, err
				}
				err = u.Rec.WriteChrome(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					return nil, err
				}
				fmt.Printf("trace: wrote %s (open in Perfetto or chrome://tracing)\n", obs.Trace)
			}
			if obs.TraceSummary {
				fmt.Printf("\n%s", u.Rec.Summary())
			}
			metrics.ObserveRecording(reg, u.Rec)
			return u.Bench(params), nil
		},
	}
	order := []string{"table1", "fig2", "fig4", "fig5", "accuracy", "runtimeopt", "robustness", "utilization"}

	run := func(name string) {
		m, err := runners[name]()
		if err != nil {
			fail(err)
		}
		if *outDir != "" {
			if reg != nil {
				snap := reg.Snapshot()
				m.Metrics = &snap
			}
			m.CaptureRuntime()
			path := filepath.Join(*outDir, "BENCH_"+name+".json")
			if err := m.WriteFile(path); err != nil {
				fail(err)
			}
			fmt.Printf("manifest: wrote %s\n", path)
		}
	}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			run(name)
			fmt.Println()
		}
	} else {
		if _, ok := runners[*exp]; !ok {
			fail(fmt.Errorf("unknown experiment %q (want one of %v or all)", *exp, order))
		}
		run(*exp)
	}
	if err := obs.Finish(os.Stdout); err != nil {
		fail(err)
	}
}

// runCompare implements the CI gate: load two manifests, diff them, and
// exit 1 when any tracked value regressed (or silently vanished), 2 on
// usage or read errors.
func runCompare(args []string, tolerance float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchsuite -compare old.json new.json [-tolerance F]")
		return 2
	}
	old, err := bench.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		return 2
	}
	cur, err := bench.ReadFile(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		return 2
	}
	c, err := bench.Compare(old, cur, bench.CompareOptions{Tolerance: tolerance})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		return 2
	}
	fmt.Print(c.Table().String())
	fmt.Println(c.Summary())
	if len(c.Regressions()) > 0 {
		return 1
	}
	return 0
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchsuite:", err)
	os.Exit(1)
}
