// Command benchsuite regenerates the paper's evaluation: every table and
// figure of §IV/§V, printed as text tables with the same rows the paper
// plots.
//
// Usage:
//
//	benchsuite [-exp all|table1|fig2|fig4|fig5|accuracy|runtimeopt|robustness|utilization]
//	           [-scalediv N] [-seed S] [-trace out.json] [-tracesummary]
//
// Inputs are synthesized at 1/scalediv of Table I's sizes (default 512,
// ~10-18 MB per application); the shape of every result — who wins, by
// what factor, where crossovers fall — is the reproduction target, not
// absolute times.
package main

import (
	"flag"
	"fmt"
	"os"

	"activego/internal/experiments"
	"activego/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, fig2, fig4, fig5, accuracy, runtimeopt, robustness, utilization")
	scaleDiv := flag.Int64("scalediv", 512, "divide Table I input sizes by this factor")
	seed := flag.Int64("seed", 42, "generator seed")
	tracePath := flag.String("trace", "", "with -exp utilization: write the traced run as Chrome trace-event JSON to this file")
	traceSummary := flag.Bool("tracesummary", false, "with -exp utilization: print the traced run's per-component summary")
	flag.Parse()

	params := workloads.Params{ScaleDiv: *scaleDiv, Seed: *seed}
	runners := map[string]func() error{
		"table1": func() error {
			_, tbl, err := experiments.Table1(params)
			return render(tbl, err)
		},
		"fig2": func() error {
			_, tbl, err := experiments.Fig2(params)
			return render(tbl, err)
		},
		"fig4": func() error {
			_, tbl, err := experiments.Fig4(params)
			return render(tbl, err)
		},
		"fig5": func() error {
			_, tbl, err := experiments.Fig5(params)
			return render(tbl, err)
		},
		"accuracy": func() error {
			_, tbl, err := experiments.Accuracy(params)
			return render(tbl, err)
		},
		"runtimeopt": func() error {
			_, tbl, err := experiments.RuntimeOpt(params)
			return render(tbl, err)
		},
		"robustness": func() error {
			_, tbl, err := experiments.Robustness(params)
			return render(tbl, err)
		},
		"utilization": func() error {
			u, tbl, err := experiments.Utilization(params)
			if err != nil {
				return err
			}
			fmt.Print(tbl.String())
			fmt.Println()
			fmt.Print(u.MigrationTimeline().String())
			if *tracePath != "" {
				f, err := os.Create(*tracePath)
				if err != nil {
					return err
				}
				err = u.Rec.WriteChrome(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					return err
				}
				fmt.Printf("trace: wrote %s (open in Perfetto or chrome://tracing)\n", *tracePath)
			}
			if *traceSummary {
				fmt.Printf("\n%s", u.Rec.Summary())
			}
			return nil
		},
	}
	order := []string{"table1", "fig2", "fig4", "fig5", "accuracy", "runtimeopt", "robustness", "utilization"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](); err != nil {
				fail(err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fail(fmt.Errorf("unknown experiment %q (want one of %v or all)", *exp, order))
	}
	if err := run(); err != nil {
		fail(err)
	}
}

type renderer interface{ String() string }

func render(tbl renderer, err error) error {
	if err != nil {
		return err
	}
	fmt.Print(tbl.String())
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchsuite:", err)
	os.Exit(1)
}
