// Command benchsuite regenerates the paper's evaluation: every table and
// figure of §IV/§V, printed as text tables with the same rows the paper
// plots, and optionally serialized as machine-readable benchmark
// manifests for CI's perf-regression gate.
//
// Usage:
//
//	benchsuite [-exp all|table1|fig2|fig4|fig5|accuracy|runtimeopt|robustness|resilience|utilization|serving|drift|planner]
//	           [-scalediv N] [-seed S] [-outdir DIR] [-metrics out.json]
//	           [-tenants N] [-arrival poisson|bursty|uniform|closed] [-qps Q] [-duration D]
//	           [-httpmon addr] [-pprof cpu.pb] [-memprofile mem.pb]
//	           [-trace out.json] [-tracesummary]
//	benchsuite -compare old.json new.json [-tolerance 0.10]
//
// Inputs are synthesized at 1/scalediv of Table I's sizes (default 512,
// ~10-18 MB per application); the shape of every result — who wins, by
// what factor, where crossovers fall — is the reproduction target, not
// absolute times.
//
// With -outdir, every experiment additionally writes BENCH_<exp>.json: a
// schema-versioned manifest of its simulated results, planner choices,
// metrics snapshot, and Go runtime stats (see internal/bench and
// DESIGN.md §10). -compare diffs two manifests benchstat-style and exits
// nonzero when a tracked value worsened past the tolerance — the CI gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"activego/internal/bench"
	"activego/internal/cliutil"
	"activego/internal/experiments"
	"activego/internal/metrics"
	"activego/internal/par"
	"activego/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, fig2, fig4, fig5, accuracy, runtimeopt, robustness, resilience, utilization, serving, drift, planner")
	chaosN := flag.Int("chaos", 0, "run N extra randomized chaos fault schedules after the resilience experiment (0 = just the built-in sub-run)")
	chaosSeed := flag.Uint64("chaos-seed", experiments.ResilienceSeed, "seed for the -chaos schedule sweep")
	scaleDiv := flag.Int64("scalediv", 512, "divide Table I input sizes by this factor")
	seed := flag.Int64("seed", 42, "generator seed")
	outDir := flag.String("outdir", "", "write one BENCH_<exp>.json benchmark manifest per experiment into this directory")
	compare := flag.Bool("compare", false, "compare two manifests: benchsuite -compare old.json new.json; exit 1 on regression")
	tolerance := flag.Float64("tolerance", bench.DefaultTolerance, "with -compare: allowed fractional worsening per tracked value")
	obs := cliutil.Register(flag.CommandLine)
	obs.RegisterMonitor(flag.CommandLine)
	serving := cliutil.RegisterServing(flag.CommandLine)
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *tolerance))
	}
	if err := obs.Start(); err != nil {
		fail(err)
	}
	if addr, err := obs.StartMonitor(); err != nil {
		fail(err)
	} else if addr != "" {
		fmt.Printf("httpmon: serving expvar, pprof, and /metrics on http://%s\n", addr)
	}
	reg := obs.Registry()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail(err)
		}
	}
	params := workloads.Params{ScaleDiv: *scaleDiv, Seed: *seed}
	// A runner prints its tables to out (captured per experiment so -j N
	// interleaves nothing) and records into sub, its private registry
	// slice (nil when metrics are off; merged into reg in suite order).
	runners := map[string]func(mopts []experiments.Option, sub *metrics.Registry, out io.Writer) (*bench.Manifest, error){
		"table1": func(mopts []experiments.Option, _ *metrics.Registry, out io.Writer) (*bench.Manifest, error) {
			rows, tbl, err := experiments.Table1(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(out, tbl.String())
			return experiments.BenchTable1(rows, params), nil
		},
		"fig2": func(mopts []experiments.Option, _ *metrics.Registry, out io.Writer) (*bench.Manifest, error) {
			res, tbl, err := experiments.Fig2(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(out, tbl.String())
			return res.Bench(params), nil
		},
		"fig4": func(mopts []experiments.Option, _ *metrics.Registry, out io.Writer) (*bench.Manifest, error) {
			res, tbl, err := experiments.Fig4(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(out, tbl.String())
			return res.Bench(params), nil
		},
		"fig5": func(mopts []experiments.Option, _ *metrics.Registry, out io.Writer) (*bench.Manifest, error) {
			res, tbl, err := experiments.Fig5(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(out, tbl.String())
			return res.Bench(params), nil
		},
		"accuracy": func(mopts []experiments.Option, _ *metrics.Registry, out io.Writer) (*bench.Manifest, error) {
			res, tbl, err := experiments.Accuracy(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(out, tbl.String())
			return res.Bench(params), nil
		},
		"runtimeopt": func(mopts []experiments.Option, _ *metrics.Registry, out io.Writer) (*bench.Manifest, error) {
			res, tbl, err := experiments.RuntimeOpt(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(out, tbl.String())
			return res.Bench(params), nil
		},
		"robustness": func(mopts []experiments.Option, _ *metrics.Registry, out io.Writer) (*bench.Manifest, error) {
			res, tbl, err := experiments.Robustness(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(out, tbl.String())
			return res.Bench(params), nil
		},
		"resilience": func(mopts []experiments.Option, sub *metrics.Registry, out io.Writer) (*bench.Manifest, error) {
			res, tbl, err := experiments.Resilience(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(out, tbl.String())
			if res.Chaos != nil {
				fmt.Fprintln(out, res.Chaos.Summary())
			}
			metrics.ObserveRecording(sub, res.Rec)
			return res.Bench(params), nil
		},
		"serving": func(mopts []experiments.Option, sub *metrics.Registry, out io.Writer) (*bench.Manifest, error) {
			mopts = append(mopts, experiments.WithServing(experiments.ServingOverrides{
				Tenants:  serving.Tenants,
				Arrival:  serving.Arrival,
				QPS:      serving.QPS,
				Duration: serving.Duration,
			}))
			res, tbl, err := experiments.Serving(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(out, tbl.String())
			fmt.Fprintf(out, "capacity: %.1f req/s (mix-weighted solo service %.4fs)\n",
				res.CapacityQPS, res.MeanService)
			metrics.ObserveRecording(sub, res.Rec)
			return res.Bench(params), nil
		},
		"planner": func(mopts []experiments.Option, _ *metrics.Registry, out io.Writer) (*bench.Manifest, error) {
			res, tbl, err := experiments.Planner(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(out, tbl.String())
			fmt.Fprintf(out, "cache: %d/%d builds served warm (%.1f%% hit rate, identical=%t)\n",
				res.Cache.Hits, res.Cache.Builds, 100*res.Cache.HitRate, res.Cache.HitIdentical)
			return res.Bench(params), nil
		},
		"drift": func(mopts []experiments.Option, _ *metrics.Registry, out io.Writer) (*bench.Manifest, error) {
			res, tbl, err := experiments.Drift(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(out, tbl.String())
			fmt.Fprintf(out, "stale: control %v, burst %v of offloaded %v (overlap %d)\n",
				res.Control.Stale, res.Burst.Stale, res.Offloaded, res.StaleOffloadedOverlap())
			return res.Bench(params), nil
		},
		"utilization": func(mopts []experiments.Option, sub *metrics.Registry, out io.Writer) (*bench.Manifest, error) {
			u, tbl, err := experiments.Utilization(params, mopts...)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(out, tbl.String())
			fmt.Fprintln(out)
			fmt.Fprint(out, u.MigrationTimeline().String())
			// The trace flags apply to the study's own steady-state
			// recorder — the run worth a timeline — not a top-level one.
			if obs.Trace != "" {
				f, err := os.Create(obs.Trace)
				if err != nil {
					return nil, err
				}
				err = u.Rec.WriteChrome(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					return nil, err
				}
				fmt.Fprintf(out, "trace: wrote %s (open in Perfetto or chrome://tracing)\n", obs.Trace)
			}
			if obs.TraceSummary {
				fmt.Fprintf(out, "\n%s", u.Rec.Summary())
			}
			metrics.ObserveRecording(sub, u.Rec)
			return u.Bench(params), nil
		},
	}
	order := []string{"table1", "fig2", "fig4", "fig5", "accuracy", "runtimeopt", "robustness", "resilience", "utilization", "serving", "drift", "planner"}

	names := order
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			fail(fmt.Errorf("unknown experiment %q (want one of %v or all)", *exp, order))
		}
		names = []string{*exp}
	}

	// Independent experiments fan out on the -j pool; each runner's
	// output, sub-registry, and manifest are folded back in suite order,
	// so stdout, the cumulative metrics snapshots attached to manifests,
	// and the BENCH_*.json files are bit-identical at any -j.
	pool := obs.Pool()
	type expOut struct {
		manifest *bench.Manifest
		output   string
		sub      *metrics.Registry
	}
	outs, err := par.Map(pool, len(names), func(i int) (expOut, error) {
		var buf strings.Builder
		var sopts []experiments.Option
		var sub *metrics.Registry
		if reg != nil {
			sub = metrics.New()
			sopts = append(sopts, experiments.WithMetrics(sub))
		}
		if pool != nil {
			sopts = append(sopts, experiments.WithPool(pool))
		}
		m, err := runners[names[i]](sopts, sub, &buf)
		if err != nil {
			return expOut{}, err
		}
		return expOut{manifest: m, output: buf.String(), sub: sub}, nil
	})
	if err != nil {
		fail(err)
	}
	for i, out := range outs {
		name := names[i]
		if len(names) > 1 {
			fmt.Printf("==== %s ====\n", name)
		}
		fmt.Print(out.output)
		reg.Merge(out.sub)
		if *outDir != "" {
			m := out.manifest
			if reg != nil {
				snap := reg.Snapshot()
				m.Metrics = &snap
			}
			m.CaptureRuntime()
			path := filepath.Join(*outDir, "BENCH_"+name+".json")
			if err := m.WriteFile(path); err != nil {
				fail(err)
			}
			fmt.Printf("manifest: wrote %s\n", path)
		}
		if len(names) > 1 {
			fmt.Println()
		}
	}
	if *chaosN > 0 {
		rep, err := experiments.ChaosSweep(params, *chaosSeed, *chaosN, chaosOpts(reg, pool)...)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep.Summary())
		if !rep.Ok() {
			fail(fmt.Errorf("chaos sweep violated an invariant"))
		}
	}
	if err := obs.Finish(os.Stdout); err != nil {
		fail(err)
	}
}

// chaosOpts forwards the suite's observability to the -chaos sweep.
func chaosOpts(reg *metrics.Registry, pool *par.Pool) []experiments.Option {
	var opts []experiments.Option
	if reg != nil {
		opts = append(opts, experiments.WithMetrics(reg))
	}
	if pool != nil {
		opts = append(opts, experiments.WithPool(pool))
	}
	return opts
}

// runCompare implements the CI gate: load two manifests, diff them, and
// exit 1 when any tracked value regressed (or silently vanished), 2 on
// usage or read errors.
func runCompare(args []string, tolerance float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchsuite -compare old.json new.json [-tolerance F]")
		return 2
	}
	old, err := bench.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		return 2
	}
	cur, err := bench.ReadFile(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		return 2
	}
	c, err := bench.Compare(old, cur, bench.CompareOptions{Tolerance: tolerance})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		return 2
	}
	fmt.Print(c.Table().String())
	fmt.Println(c.Summary())
	if len(c.Regressions()) > 0 {
		return 1
	}
	return 0
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchsuite:", err)
	os.Exit(1)
}
