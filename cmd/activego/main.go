// Command activego runs a workload (or a mini-language source file)
// through the full ActivePy pipeline on the simulated platform and prints
// the sampling-phase plan plus an execution comparison against the
// baseline configurations.
//
// Usage:
//
//	activego -workload tpch-6 [-scalediv N] [-seed S] [-availability F] [-no-migration]
//	         [-resilience] [-trace out.json] [-tracesummary] [-metrics out.json]
//	         [-pprof cpu.pb] [-memprofile mem.pb]
//	activego -workload tpch-6 -serve [-tenants N] [-arrival P] [-qps Q] [-duration D]
//	activego -list
//	activego vet program.apy...          # static analysis / lint
//	activego vet -workloads              # lint every embedded workload
//	activego explain -workload tpch-6    # plan provenance: per-line Eq. 1 terms and verdicts
//	activego explain -workload tpch-6 -run   # ... plus observed costs and drift cross-links
package main

import (
	"flag"
	"fmt"
	"os"

	"activego/internal/analysis"
	"activego/internal/baseline"
	"activego/internal/cliutil"
	"activego/internal/codegen"
	"activego/internal/core"
	"activego/internal/driver"
	"activego/internal/exec"
	"activego/internal/inputs"
	"activego/internal/platform"
	"activego/internal/profile"
	"activego/internal/resilience"
	"activego/internal/workloads"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		os.Exit(runVet(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		os.Exit(runExplain(os.Args[2:]))
	}
	workload := flag.String("workload", "", "workload name (see -list)")
	list := flag.Bool("list", false, "list available workloads")
	scaleDiv := flag.Int64("scalediv", 512, "divide Table I input sizes by this factor")
	seed := flag.Int64("seed", 42, "generator seed")
	avail := flag.Float64("availability", 1.0, "fraction of CSE time available (0,1]")
	noMigration := flag.Bool("no-migration", false, "disable dynamic task migration")
	withResilience := flag.Bool("resilience", false, "arm the full degradation ladder (deadlines, backoff, circuit breaker) on the offload path")
	showProfile := flag.Bool("profile", false, "print the sampling-phase curve fits per line")
	serve := flag.Bool("serve", false, "drive a multi-tenant serving run of the workload (DESIGN.md §14) instead of one pipeline pass")
	obs := cliutil.Register(flag.CommandLine)
	srv := cliutil.RegisterServing(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, s := range workloads.All() {
			fmt.Printf("%-13s %s\n", s.Name, s.Description)
		}
		return
	}
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "activego: -workload required (or -list)")
		os.Exit(2)
	}
	spec, ok := workloads.ByName(*workload)
	if !ok {
		fail(fmt.Errorf("unknown workload %q", *workload))
	}
	params := workloads.Params{ScaleDiv: *scaleDiv, Seed: *seed}
	if *serve {
		var pol *resilience.Policy
		if *withResilience {
			p := resilience.Default(uint64(*seed))
			pol = &p
		}
		os.Exit(runServe(spec.Name, params, obs, srv, uint64(*seed), pol))
	}
	inst := spec.Build(params)

	if err := obs.Start(); err != nil {
		fail(err)
	}
	p := platform.Default()
	if *avail < 1 {
		p.Dev.SetAvailability(*avail)
	}
	if rec := obs.Recorder(); rec != nil {
		p.SetRecorder(rec)
	}
	rt := core.New(p)
	rt.SampleScales = profile.ScaledScales
	rt.Metrics = obs.Registry()
	rt.Pool = obs.Pool()
	rt.Planner = obs.Planner
	rt.PreloadInputs(inst.Registry)

	cfg := core.DefaultConfig()
	cfg.Migration = !*noMigration
	cfg.OverheadScale = params.OverheadScale()
	cfg.ObsWindow = obs.ObsWindow
	if *withResilience {
		pol := resilience.Default(uint64(*seed))
		cfg.Resilience = &pol
	}

	fmt.Printf("workload %s: %s (%.1f MB input, paper: %.1f GB)\n",
		spec.Name, spec.Description,
		float64(inst.Registry.TotalBytes())/(1<<20), float64(spec.PaperBytes)/(1<<30))
	fmt.Printf("platform: %d host cores @%.1f GHz-equiv, %d CSE cores (C=%.2f), link %.1f GB/s, array %.1f GB/s\n",
		p.Cfg.Host.Cores, p.Cfg.Host.Rate/1e9, p.Cfg.CSD.CSECores, rt.Machine.C,
		rt.Machine.D2HBW/1e9, rt.Machine.FlashBW/1e9)

	out, err := rt.Run(inst.Source, inst.Registry, cfg)
	if err != nil {
		fail(err)
	}
	if err := inst.Check(out.Env); err != nil {
		fail(fmt.Errorf("correctness check: %w", err))
	}
	fmt.Printf("\n%s\n", out.Plan.Describe())
	if *showProfile {
		fmt.Println("sampling-phase curve fits:")
		for _, lp := range out.Profile.Lines {
			fmt.Printf("  line %2d: host-work %v, bytes-out %v\n", lp.Line, lp.Models[0], lp.Models[5])
		}
	}
	fmt.Printf("activepy: %.4f ms (migrated=%v, %d CSD / %d host line executions)\n",
		out.Exec.Duration*1e3, out.Exec.Migrated, out.Exec.RecordsOnCSD, out.Exec.RecordsOnHost)
	if *withResilience {
		fmt.Printf("resilience: %d breaker opens / %d closes / %d probes, %d degraded lines, %d deadline misses\n",
			out.Exec.BreakerOpens, out.Exec.BreakerCloses, out.Exec.BreakerProbes,
			out.Exec.DegradedLines, out.Exec.DeadlineMisses)
	}

	p.FoldMetrics(obs.Registry())
	if err := obs.Finish(os.Stdout); err != nil {
		fail(err)
	}

	base, err := baseline.RunHostOnly(platform.Default(), out.Trace, codegen.C)
	if err != nil {
		fail(err)
	}
	fmt.Printf("c-baseline (no ISP): %.4f ms -> activepy speedup %.3fx\n",
		base.Duration*1e3, base.Duration/out.Exec.Duration)

	part, bestT, err := baseline.Search(platform.DefaultConfig(), out.Trace)
	if err != nil {
		fail(err)
	}
	fmt.Printf("programmer-directed static ISP: lines %v, %.4f ms (%.3fx); plan match: %v\n",
		part.Lines(), bestT*1e3, base.Duration/bestT, part.Equal(out.Plan.Partition))
	fmt.Println("\nresult correctness: OK (matches the reference Go implementation)")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "activego:", err)
	os.Exit(1)
}

// runServe is the -serve mode: build the workload once as a serving
// scenario, split the offered load across -tenants request streams, and
// drive them all at one long-lived platform through the serving driver.
// Unset serving flags fall back to the same conventions as the -exp
// serving study: offered rate calibrated from the solo warm service
// time, horizon sized for ~48 requests.
func runServe(name string, params workloads.Params, obs *cliutil.Flags,
	srv *cliutil.ServingFlags, seed uint64, pol *resilience.Policy) int {
	if err := obs.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "activego:", err)
		return 1
	}
	sc, err := driver.Build(name, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "activego:", err)
		return 1
	}
	mix, err := driver.NewMix(driver.MixEntry{Scenario: sc, Weight: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "activego:", err)
		return 1
	}
	solo, err := exec.Run(platform.Default(), sc.Trace, exec.Options{
		Backend: sc.Backend, Partition: sc.Partition, Estimates: sc.Estimates,
		OverheadScale: sc.OverheadScale, UseCallQueue: true, Warm: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "activego:", err)
		return 1
	}
	const maxInFlight = 4
	totalQPS := srv.QPS
	if totalQPS <= 0 {
		totalQPS = maxInFlight / solo.Duration
	}
	duration := srv.Duration
	if duration <= 0 {
		duration = 48 / totalQPS
	}
	nTenants := srv.Tenants
	if nTenants <= 0 {
		nTenants = 2
	}
	proc := driver.Process(srv.Arrival)
	if proc == "" {
		proc = driver.Poisson
	}
	tenants := make([]driver.TenantConfig, nTenants)
	for i := range tenants {
		tenants[i] = driver.TenantConfig{
			Name: fmt.Sprintf("tenant%d", i),
			Mix:  mix,
			Arrival: driver.Arrival{
				Process: proc, QPS: totalQPS / float64(nTenants),
				BurstFactor: 4, DutyCycle: 0.25, Period: duration / 4,
				Workers: maxInFlight, Think: solo.Duration / 2,
			},
		}
	}
	p := platform.Default()
	if rec := obs.Recorder(); rec != nil {
		p.SetRecorder(rec)
	}
	fmt.Printf("serving %s: %d tenants, %s arrivals, %.1f req/s offered over %.4fs (solo service %.4fs)\n",
		name, nTenants, proc, totalQPS, duration, solo.Duration)
	res, err := driver.Run(p, driver.Config{
		Seed: seed, Duration: duration, Tenants: tenants,
		MaxInFlight: maxInFlight, Resilience: pol, Metrics: obs.Registry(),
		ObsWindow: obs.ObsWindow,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "activego:", err)
		return 1
	}
	fmt.Printf("%-10s %8s %8s %6s %6s %9s %9s %9s\n",
		"tenant", "offered", "done", "fail", "shed", "p50", "p95", "p99")
	for _, tr := range res.Tenants {
		fmt.Printf("%-10s %8d %8d %6d %6d %8.4fs %8.4fs %8.4fs\n",
			tr.Name, tr.Offered, tr.Completed, tr.Failed, tr.Shed, tr.P50, tr.P95, tr.P99)
	}
	fmt.Printf("makespan %.4fs, fairness %.3f (Jain over completed/offered)\n",
		res.Makespan, res.Fairness)
	p.FoldMetrics(obs.Registry())
	if err := obs.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "activego:", err)
		return 1
	}
	return 0
}

// runExplain implements `activego explain`: render a workload's plan
// provenance — the per-line Equation 1 terms, pin/prune verdicts, and
// the projected-vs-all-host totals the placement was argued from — as a
// table or JSON. With -run the workload also executes under windowed
// observation and the table grows the drift cross-link columns
// (observed cost per invocation, worst ratio, staleness).
func runExplain(args []string) int {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	workload := fs.String("workload", "", "workload name (see activego -list)")
	scaleDiv := fs.Int64("scalediv", 512, "divide Table I input sizes by this factor")
	seed := fs.Int64("seed", 42, "generator seed")
	asJSON := fs.Bool("json", false, "emit the explain record as indented JSON")
	runIt := fs.Bool("run", false, "also execute the workload under windowed observation and cross-link drift columns")
	window := fs.Float64("obswindow", 0, "observation window for -run in simulated seconds (0 = 1/16 of the projected runtime)")
	planner := fs.String("planner", "", "planning algorithm: auto, optimal, bnb, algorithm1, algorithm1-literal (DESIGN.md §16); empty = auto")
	cacheStats := fs.Bool("cachestats", false, "route the analysis through a plan cache and append its hit/miss footer")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: activego explain -workload NAME [-scalediv N] [-seed S] [-json] [-planner P] [-cachestats] [-run [-obswindow W]]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if *workload == "" {
		fs.Usage()
		return 2
	}
	err := cliutil.Explain(os.Stdout, cliutil.ExplainOptions{
		Workload:   *workload,
		ScaleDiv:   *scaleDiv,
		Seed:       *seed,
		JSON:       *asJSON,
		Run:        *runIt,
		Window:     *window,
		Planner:    *planner,
		CacheStats: *cacheStats,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "activego explain:", err)
		return 1
	}
	return 0
}

// runVet implements `activego vet`: the static-analysis lint surface.
// Diagnostics print one per line in the machine-readable form
// `file:line: CODE: message [severity]`, or as a JSON array with -json.
// Exit status: 0 when every file is clean or carries only warnings
// unless -werror, 1 when any error-severity diagnostic (or, with
// -werror, any diagnostic) fired, 2 on usage, read, or parse failures.
//
// With -workloads the targets are the embedded workload programs, and
// the lint runs the real pipeline's sampling phase too, so the
// dynamic-input advisories (AV009 bound-vs-fit contradictions, AV011
// never-win offloads) appear alongside the static catalogue.
func runVet(args []string) int {
	fs := flag.NewFlagSet("vet", flag.ExitOnError)
	werror := fs.Bool("werror", false, "treat warnings as errors")
	strict := fs.Bool("strict", false, "alias of -werror (kept for existing scripts)")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	overWorkloads := fs.Bool("workloads", false, "lint every embedded workload program instead of files")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: activego vet [-werror] [-json] program.apy...")
		fmt.Fprintln(os.Stderr, "       activego vet [-werror] [-json] -workloads")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	warnFatal := *werror || *strict

	type target struct{ name, src string }
	var targets []target
	var vetDynamic func(src string, name string) ([]analysis.Diagnostic, error)
	if *overWorkloads {
		p := workloads.TestParams()
		for _, spec := range workloads.All() {
			targets = append(targets, target{name: "workload:" + spec.Name, src: spec.Build(p).Source})
		}
		// Workload programs come with their inputs, so the sampling-phase
		// advisories are computable: vet them through the real pipeline.
		insts := map[string]*inputs.Registry{}
		for _, spec := range workloads.All() {
			insts["workload:"+spec.Name] = spec.Build(p).Registry
		}
		vetDynamic = func(src, name string) ([]analysis.Diagnostic, error) {
			rt := core.New(platform.Default())
			rt.SampleScales = profile.ScaledScales
			rt.PreloadInputs(insts[name])
			return rt.Vet(src, insts[name])
		}
	} else {
		if fs.NArg() == 0 {
			fs.Usage()
			return 2
		}
		for _, path := range fs.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "activego vet:", err)
				return 2
			}
			targets = append(targets, target{name: path, src: string(src)})
		}
	}

	status := 0
	var all []analysis.FileDiagnostic
	for _, tg := range targets {
		var diags []analysis.Diagnostic
		var err error
		if vetDynamic != nil {
			diags, err = vetDynamic(tg.src, tg.name)
		} else {
			diags, err = analysis.LintSource(tg.src)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "activego vet: %s: %v\n", tg.name, err)
			return 2
		}
		for _, d := range diags {
			if *asJSON {
				all = append(all, analysis.FileDiagnostic{File: tg.name, Diag: d})
			} else {
				fmt.Printf("%s [%s]\n", d.Format(tg.name), d.Severity)
			}
		}
		if analysis.HasErrors(diags) || (warnFatal && len(diags) > 0) {
			status = 1
		}
	}
	if *asJSON {
		if err := analysis.WriteJSON(os.Stdout, all); err != nil {
			fmt.Fprintln(os.Stderr, "activego vet:", err)
			return 2
		}
	}
	return status
}
